// Package stream adapts the symbol-oriented ReMICSS protocol to ordered
// byte streams.
//
// The reference protocol is deliberately best-effort and per-symbol (the
// paper's DIBS interception carries IP datagrams). Applications that want a
// pipe instead of datagrams need two adapters:
//
//   - Writer chunks a byte stream into symbols and pushes them through a
//     send function, retrying on backpressure.
//   - Orderer re-sequences delivered symbols (which arrive out of order
//     across channels) into their original order, skipping symbols that
//     never arrive once they fall outside the reordering window, like a
//     jitter buffer.
package stream

import (
	"errors"
	"fmt"
)

// Writer chunks written bytes into protocol symbols. It implements
// io.Writer; every Write is split into chunks of at most ChunkSize bytes,
// each handed to the send function.
type Writer struct {
	send  func([]byte) error
	retry func(error) bool
	chunk int
	err   error
}

// ErrWriterStopped is returned once the retry policy gives up; subsequent
// writes fail immediately.
var ErrWriterStopped = errors.New("stream: writer stopped")

// NewWriter builds a Writer. send transmits one symbol. retry is consulted
// when send fails: return true to try the same chunk again (after whatever
// waiting the callback performs), false to give up and surface the error;
// a nil retry gives up on the first error.
func NewWriter(send func([]byte) error, chunkSize int, retry func(error) bool) (*Writer, error) {
	if send == nil {
		return nil, errors.New("stream: nil send function")
	}
	if chunkSize <= 0 {
		return nil, fmt.Errorf("stream: non-positive chunk size %d", chunkSize)
	}
	return &Writer{send: send, retry: retry, chunk: chunkSize}, nil
}

// Write implements io.Writer with the usual contract: it returns the number
// of bytes consumed and an error if the stream failed.
func (w *Writer) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	written := 0
	for len(p) > 0 {
		n := w.chunk
		if n > len(p) {
			n = len(p)
		}
		for {
			err := w.send(p[:n])
			if err == nil {
				break
			}
			if w.retry == nil || !w.retry(err) {
				w.err = fmt.Errorf("%w: %v", ErrWriterStopped, err)
				return written, w.err
			}
		}
		written += n
		p = p[n:]
	}
	return written, nil
}

// Orderer re-sequences symbols by sequence number. Push accepts symbols in
// any order; deliver is invoked in strictly increasing sequence order. When
// more than Window out-of-order symbols accumulate, the oldest gap is
// declared lost (onGap) and delivery resumes past it.
type Orderer struct {
	deliver func(seq uint64, payload []byte)
	onGap   func(seq uint64)
	window  int

	next    uint64
	pending map[uint64][]byte //remicss:secret

	delivered, skipped, duplicate, stale int64
}

// OrdererStats counts orderer activity.
type OrdererStats struct {
	// Delivered counts symbols handed out in order.
	Delivered int64
	// Skipped counts sequence numbers declared lost.
	Skipped int64
	// Duplicate counts repeated sequence numbers.
	Duplicate int64
	// Stale counts symbols arriving after their slot was skipped.
	Stale int64
}

// NewOrderer builds an orderer delivering in-order from sequence 0. window
// bounds the number of buffered out-of-order symbols before the oldest gap
// is skipped; onGap may be nil.
func NewOrderer(window int, deliver func(seq uint64, payload []byte), onGap func(seq uint64)) (*Orderer, error) {
	if deliver == nil {
		return nil, errors.New("stream: nil deliver function")
	}
	if window <= 0 {
		return nil, fmt.Errorf("stream: non-positive window %d", window)
	}
	return &Orderer{
		deliver: deliver,
		onGap:   onGap,
		window:  window,
		pending: make(map[uint64][]byte),
	}, nil
}

// Push accepts one symbol. The payload is retained until delivery; callers
// must not mutate it afterwards.
func (o *Orderer) Push(seq uint64, payload []byte) {
	switch {
	case seq < o.next:
		o.stale++
		return
	case seq == o.next:
		o.deliver(seq, payload)
		o.delivered++
		o.next++
		o.drain()
	default:
		if _, dup := o.pending[seq]; dup {
			o.duplicate++
			return
		}
		o.pending[seq] = payload
		for len(o.pending) > o.window {
			o.skipOldestGap()
		}
	}
}

// Flush delivers everything buffered, skipping all remaining gaps. Call at
// end of stream.
func (o *Orderer) Flush() {
	for len(o.pending) > 0 {
		o.skipOldestGap()
	}
}

// Stats returns a snapshot of the counters.
func (o *Orderer) Stats() OrdererStats {
	return OrdererStats{
		Delivered: o.delivered,
		Skipped:   o.skipped,
		Duplicate: o.duplicate,
		Stale:     o.stale,
	}
}

// Pending returns the number of buffered out-of-order symbols.
func (o *Orderer) Pending() int { return len(o.pending) }

// drain delivers consecutive buffered symbols starting at next.
func (o *Orderer) drain() {
	for {
		payload, ok := o.pending[o.next]
		if !ok {
			return
		}
		delete(o.pending, o.next)
		o.deliver(o.next, payload)
		o.delivered++
		o.next++
	}
}

// skipOldestGap declares the current head-of-line sequence lost and resumes
// delivery from the next buffered symbol run.
func (o *Orderer) skipOldestGap() {
	if o.onGap != nil {
		o.onGap(o.next)
	}
	o.skipped++
	o.next++
	o.drain()
}
