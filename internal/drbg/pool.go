package drbg

import (
	"sync"
	"sync/atomic"
)

// Pool is the concurrent front door over single-caller DRBG states,
// reusing the sender's per-caller scratch idiom: an atomic slot that a
// lone caller always hits with two uncontended atomics, and a sync.Pool
// catching the overflow when Reads race. Each Read borrows a whole state,
// so concurrent callers never interleave inside one keystream and the
// per-state buffers stay single-writer.
//
// The zero Pool is ready to use and seeds states from crypto/rand.
type Pool struct {
	slot atomic.Pointer[DRBG]
	pool sync.Pool

	// newState overrides how replacement states are built; tests install
	// deterministic constructors here. nil means New (crypto/rand-seeded).
	newState func() (*DRBG, error)
}

// Shared is the process-wide pool: the default randomness source for
// splitters and pad draws, standing in for crypto/rand.Reader at the same
// call sites with the same io.Reader shape.
var Shared = &Pool{}

// NewPool returns a pool building its states with newState instead of New,
// so tests can route a deterministic or failing generator through code that
// only accepts an io.Reader.
func NewPool(newState func() (*DRBG, error)) *Pool {
	return &Pool{newState: newState}
}

// Read fills p with keystream from a borrowed state. Safe for concurrent
// use. A state whose reseed fails is discarded, not recycled, so one
// entropy outage cannot wedge a poisoned generator into the rotation.
//
//remicss:noalloc
func (p *Pool) Read(b []byte) (int, error) {
	d, err := p.get()
	if err != nil {
		return 0, err
	}
	n, err := d.Read(b)
	if err != nil {
		return n, err
	}
	p.put(d)
	return n, nil
}

// get claims a pooled state or builds a fresh one.
func (p *Pool) get() (*DRBG, error) {
	if d := p.slot.Swap(nil); d != nil {
		return d, nil
	}
	if d, _ := p.pool.Get().(*DRBG); d != nil {
		return d, nil
	}
	if p.newState != nil {
		return p.newState()
	}
	return New()
}

// put returns a healthy state to the slot, overflowing into the sync.Pool.
func (p *Pool) put(d *DRBG) {
	if p.slot.CompareAndSwap(nil, d) {
		return
	}
	p.pool.Put(d)
}
