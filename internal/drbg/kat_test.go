package drbg

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// Known-answer vectors for the CTR_DRBG (AES-256, no derivation function)
// construction. The NIST CAVP response files are not vendorable here, so
// the committed vectors in testdata/ctr_drbg_kat.json were produced by the
// independent reference implementation in drbg_test.go — a straight-line
// big.Int transcription of the SP 800-90A §10.2.1 pseudocode sharing no
// code with the production path — and pinned. Each vector checks two
// windows of the stream: the head (instantiate + first generate) and a
// span crossing the first 16 KiB batch boundary, which is where the
// counter hand-off and the backtracking-resistance rekey live.
//
// Regenerate with: DRBG_WRITE_KAT=1 go test -run TestWriteKAT ./internal/drbg

type katVector struct {
	Name    string `json:"name"`
	Entropy string `json:"entropy"` // 48-byte instantiate input, hex
	Head    string `json:"head"`    // output bytes [0, 64)
	Seam    string `json:"seam"`    // output bytes [batchLen-32, batchLen+32)
}

const katFile = "testdata/ctr_drbg_kat.json"

func katEntropies() map[string][]byte {
	all0 := make([]byte, seedLen)
	ramp := make([]byte, seedLen)
	for i := range ramp {
		ramp[i] = byte(i)
	}
	return map[string][]byte{
		"all-zero": all0,
		"ramp":     ramp,
		"a5-xor37": seed48(0xA5),
	}
}

func TestKnownAnswerVectors(t *testing.T) {
	raw, err := os.ReadFile(filepath.FromSlash(katFile))
	if err != nil {
		t.Fatalf("missing KAT vectors (regenerate with DRBG_WRITE_KAT=1): %v", err)
	}
	var vectors []katVector
	if err := json.Unmarshal(raw, &vectors); err != nil {
		t.Fatal(err)
	}
	if len(vectors) == 0 {
		t.Fatal("empty KAT file")
	}
	entropies := katEntropies()
	for _, v := range vectors {
		t.Run(v.Name, func(t *testing.T) {
			entropy, ok := entropies[v.Name]
			if ok {
				if got := hex.EncodeToString(entropy); got != v.Entropy {
					t.Fatalf("entropy drifted: file %s, test %s", v.Entropy, got)
				}
			} else {
				if entropy, err = hex.DecodeString(v.Entropy); err != nil {
					t.Fatal(err)
				}
			}
			d, err := NewWithEntropy(&fixedEntropy{chunks: [][]byte{entropy}})
			if err != nil {
				t.Fatal(err)
			}
			out := make([]byte, batchLen+32)
			if _, err := io.ReadFull(d, out); err != nil {
				t.Fatal(err)
			}
			if got := hex.EncodeToString(out[:64]); got != v.Head {
				t.Fatalf("head mismatch:\n got %s\nwant %s", got, v.Head)
			}
			if got := hex.EncodeToString(out[batchLen-32:]); got != v.Seam {
				t.Fatalf("batch-seam mismatch:\n got %s\nwant %s", got, v.Seam)
			}
		})
	}
}

// TestWriteKAT regenerates the committed vectors from the reference
// implementation. It is a generator, not a test: it runs only under
// DRBG_WRITE_KAT=1 and must be followed by a normal test run.
func TestWriteKAT(t *testing.T) {
	if os.Getenv("DRBG_WRITE_KAT") == "" {
		t.Skip("set DRBG_WRITE_KAT=1 to regenerate testdata")
	}
	var vectors []katVector
	for _, name := range []string{"all-zero", "ramp", "a5-xor37"} {
		entropy := katEntropies()[name]
		stream := newRefDRBG(entropy).refStream(batchLen + 32)
		vectors = append(vectors, katVector{
			Name:    name,
			Entropy: hex.EncodeToString(entropy),
			Head:    hex.EncodeToString(stream[:64]),
			Seam:    hex.EncodeToString(stream[batchLen-32:]),
		})
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(vectors); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.FromSlash(katFile), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %d vectors to %s", len(vectors), katFile)
}
