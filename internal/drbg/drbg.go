// Package drbg supplies the module's fast randomness engine: an AES-256
// counter DRBG — the CTR_DRBG construction of NIST SP 800-90A §10.2.1,
// instantiated without a derivation function — seeded from crypto/rand and
// generating keystream in large batches so a steady-state Read costs one
// memcpy instead of a kernel round trip. On hardware with AES instructions
// the generator sustains multiple GB/s where crypto/rand measures in the
// hundreds of MB/s, which is what moves the split pipeline's bottleneck
// off the random pad and coefficient draws.
//
// The paper's Randomness Requirements analysis prices every share in units
// of random bytes drawn per secret byte: an (k, m) split consumes
// (k-1)·|s| pad bytes for XOR and coefficient bytes for Shamir, so the
// sender's throughput ceiling is the generator's, not the field kernel's.
// This package exists to raise that ceiling without weakening the threat
// model: the construction is the standardized one, the seed is the
// operating system's entropy, and the state is inside the module's
// //remicss:secret perimeter so the taint analyzer proves key and counter
// bytes never reach logs, errors, traces, or unannotated retained state.
//
// A *DRBG is single-caller state; Pool is the concurrent front door.
package drbg

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"os"
)

const (
	keyLen   = 32            // AES-256
	blockLen = aes.BlockSize // CTR_DRBG outlen
	seedLen  = keyLen + blockLen

	// batchLen is the keystream produced per spec-level Generate: the
	// request stays far under the standard's 2^19-bit per-request ceiling
	// while amortizing the post-generate rekey (update) to under 1% of the
	// AES work. Read serves from this buffer and scrubs bytes as they
	// leave, so backtracking resistance holds for served output even
	// against a later memory compromise.
	batchLen = 16 * 1024

	// reseedAfter is the generated-byte budget after which an
	// entropy-backed instance folds fresh crypto/rand output into its
	// state. 16 MiB is vastly tighter than the standard's 2^48-request
	// reseed interval; it bounds the window a captured state stays useful.
	reseedAfter = 1 << 24
)

// ErrEntropy tags failures of the seeding entropy source. Every error this
// package returns wraps it, so callers gate on errors.Is(err, ErrEntropy)
// rather than string matching.
var ErrEntropy = errors.New("drbg: entropy source failed")

// DRBG is one CTR_DRBG instance. It is not safe for concurrent use — each
// caller owns one, typically borrowed from a Pool. The zero value is not
// usable; construct with New, NewWithEntropy, or NewDeterministic.
type DRBG struct {
	key [keyLen]byte   //remicss:secret
	v   [blockLen]byte //remicss:secret

	// buf[off:] is generated-but-unserved keystream; served bytes are
	// zeroed in place so the state never retains past output.
	buf [batchLen]byte //remicss:secret
	off int

	generated int       // bytes generated since the last (re)seed
	pid       int       // process id at the last (re)seed; fork detector
	entropy   io.Reader // nil for deterministic instances: never reseeds
}

// New returns a generator seeded from the operating system's entropy
// source, reseeding from it on interval and on fork.
func New() (*DRBG, error) { return NewWithEntropy(rand.Reader) }

// NewWithEntropy is New with an explicit entropy source, which must
// deliver 48 bytes per (re)seed. Short reads and read errors surface
// wrapped in ErrEntropy.
func NewWithEntropy(r io.Reader) (*DRBG, error) {
	d := &DRBG{entropy: r, off: batchLen}
	if err := d.reseed(); err != nil {
		return nil, err
	}
	return d, nil
}

// NewDeterministic derives the 48 bytes of seed material from seed with
// domain-separated SHA-256 and never touches an entropy source, so the
// output stream is a pure function of seed. It exists for the test wall —
// differential runs, fuzzing, and known-answer vectors — and must not be
// used for production shares.
func NewDeterministic(seed []byte) *DRBG {
	var material [seedLen]byte
	h := sha256.New()
	h.Write([]byte("remicss/drbg deterministic key\x00"))
	h.Write(seed)
	h.Sum(material[:0])
	h.Reset()
	h.Write([]byte("remicss/drbg deterministic ctr\x00"))
	h.Write(seed)
	copy(material[keyLen:], h.Sum(nil))

	d := &DRBG{off: batchLen}
	d.update(&material)
	clear(material[:])
	return d
}

// Read fills p with keystream. It satisfies io.Reader but never returns a
// short count with a nil error; the only failure mode is a reseed whose
// entropy read failed, reported wrapped in ErrEntropy with the bytes
// delivered so far counted.
//
//remicss:noalloc
func (d *DRBG) Read(p []byte) (int, error) {
	n := 0
	for n < len(p) {
		if d.off == len(d.buf) {
			if err := d.refill(); err != nil {
				return n, err
			}
		}
		c := copy(p[n:], d.buf[d.off:])
		clear(d.buf[d.off : d.off+c]) // served output never lingers in state
		d.off += c
		n += c
	}
	return n, nil
}

// refill runs one spec-level Generate of batchLen bytes: keystream blocks
// AES_K(V+1), AES_K(V+2), … produced through the stdlib CTR path (which
// dispatches to the hardware AES units), then the counter advanced past
// the consumed blocks and a no-input update that replaces the key — the
// spec's backtracking-resistance step, here also the fork/interval reseed
// point for entropy-backed instances.
func (d *DRBG) refill() error {
	if d.entropy != nil && (d.generated >= reseedAfter || d.pid != os.Getpid()) {
		if err := d.reseed(); err != nil {
			return err
		}
	}
	b, err := aes.NewCipher(d.key[:])
	if err != nil { // unreachable: the key length is fixed
		panic(err)
	}
	incr(&d.v)
	ctr := cipher.NewCTR(b, d.v[:])
	clear(d.buf[:])
	ctr.XORKeyStream(d.buf[:], d.buf[:])
	addTo(&d.v, batchLen/blockLen-1)
	d.update(nil)
	d.generated += batchLen
	d.off = 0
	return nil
}

// reseed folds 48 fresh entropy bytes into the state via update. Against
// the zero state of a new instance this is exactly the spec's Instantiate
// (Key = 0, V = 0, then Update(entropy)); on a live instance it is Reseed.
func (d *DRBG) reseed() error {
	var seed [seedLen]byte
	if _, err := io.ReadFull(d.entropy, seed[:]); err != nil {
		return fmt.Errorf("%w: %v", ErrEntropy, err)
	}
	d.update(&seed)
	clear(seed[:])
	d.generated = 0
	d.pid = os.Getpid()
	return nil
}

// update is CTR_DRBG_Update: encrypt the next three counter blocks under
// the current key, XOR in the provided seed material, and adopt the result
// as the new key and counter. material may be nil — the zero additional
// input applied after every generate, which is what makes a captured state
// useless for reconstructing earlier output.
func (d *DRBG) update(material *[seedLen]byte) {
	var temp [seedLen]byte
	b, err := aes.NewCipher(d.key[:])
	if err != nil { // unreachable: the key length is fixed
		panic(err)
	}
	for i := 0; i < seedLen; i += blockLen {
		incr(&d.v)
		b.Encrypt(temp[i:i+blockLen], d.v[:])
	}
	if material != nil {
		for i := range temp {
			temp[i] ^= material[i]
		}
	}
	copy(d.key[:], temp[:keyLen])
	copy(d.v[:], temp[keyLen:])
	clear(temp[:])
}

// incr advances the big-endian counter by one.
func incr(v *[blockLen]byte) {
	for i := blockLen - 1; i >= 0; i-- {
		v[i]++
		if v[i] != 0 {
			return
		}
	}
}

// addTo advances the big-endian counter by n.
func addTo(v *[blockLen]byte, n uint64) {
	for i := blockLen - 1; i >= 0 && n > 0; i-- {
		n += uint64(v[i])
		v[i] = byte(n)
		n >>= 8
	}
}
