package drbg

import (
	"bytes"
	"crypto/aes"
	"errors"
	"io"
	"math/big"
	"os"
	"testing"
)

// ---- independent reference implementation ----------------------------------
//
// refDRBG is a deliberately naive transcription of SP 800-90A §10.2.1
// (CTR_DRBG, AES-256, no derivation function): big.Int counter arithmetic,
// block-by-block ECB encryption, no cipher.NewCTR, no batching, no buffer
// reuse. It shares no code with the production path beyond the AES block
// primitive, so agreement between the two is evidence the batched CTR
// implementation — its counter stepping, its rekey placement, its buffer
// scrubbing — matches the spec pseudocode, not just itself.

type refDRBG struct {
	key []byte
	v   *big.Int
}

var refMod = new(big.Int).Lsh(big.NewInt(1), 128)

func newRefDRBG(entropy []byte) *refDRBG {
	r := &refDRBG{key: make([]byte, 32), v: big.NewInt(0)}
	r.update(entropy)
	return r
}

// update is CTR_DRBG_Update with optional provided data.
func (r *refDRBG) update(material []byte) {
	b, err := aes.NewCipher(r.key)
	if err != nil {
		panic(err)
	}
	var temp []byte
	for len(temp) < 48 {
		r.v.Add(r.v, big.NewInt(1)).Mod(r.v, refMod)
		block := make([]byte, 16)
		r.v.FillBytes(block)
		out := make([]byte, 16)
		b.Encrypt(out, block)
		temp = append(temp, out...)
	}
	temp = temp[:48]
	for i := range temp {
		if material != nil {
			temp[i] ^= material[i]
		}
	}
	r.key = append([]byte(nil), temp[:32]...)
	r.v = new(big.Int).SetBytes(temp[32:])
}

// generate is CTR_DRBG_Generate with no additional input.
func (r *refDRBG) generate(n int) []byte {
	b, err := aes.NewCipher(r.key)
	if err != nil {
		panic(err)
	}
	var out []byte
	for len(out) < n {
		r.v.Add(r.v, big.NewInt(1)).Mod(r.v, refMod)
		block := make([]byte, 16)
		r.v.FillBytes(block)
		enc := make([]byte, 16)
		b.Encrypt(enc, block)
		out = append(out, enc...)
	}
	out = out[:n]
	r.update(nil)
	return out
}

// refStream produces n bytes the way the production Read does: a sequence
// of batchLen-sized spec generates, concatenated.
func (r *refDRBG) refStream(n int) []byte {
	var out []byte
	for len(out) < n {
		out = append(out, r.generate(batchLen)...)
	}
	return out[:n]
}

// fixedEntropy is an entropy source yielding a caller-supplied script of
// reads, then failing.
type fixedEntropy struct {
	chunks [][]byte
	reads  int
}

func (f *fixedEntropy) Read(p []byte) (int, error) {
	if len(f.chunks) == 0 {
		return 0, errors.New("entropy script exhausted")
	}
	c := f.chunks[0]
	f.chunks = f.chunks[1:]
	f.reads++
	return copy(p, c), nil
}

func seed48(fill byte) []byte {
	s := make([]byte, seedLen)
	for i := range s {
		s[i] = fill ^ byte(i*37)
	}
	return s
}

// ---- differential: implementation vs reference -----------------------------

func TestReadMatchesReference(t *testing.T) {
	entropy := seed48(0xA5)
	d, err := NewWithEntropy(&fixedEntropy{chunks: [][]byte{entropy}})
	if err != nil {
		t.Fatal(err)
	}
	want := newRefDRBG(entropy).refStream(3 * batchLen)

	// Read in a ragged pattern chosen to cross batch boundaries mid-copy:
	// the 16 KiB refills happen at offsets that are not read boundaries.
	var got []byte
	sizes := []int{1, 7, 16, 33, 100, 1024, 4096, 8192, batchLen - 5, batchLen}
	for i := 0; len(got) < len(want); i++ {
		n := sizes[i%len(sizes)]
		if rem := len(want) - len(got); n > rem {
			n = rem
		}
		p := make([]byte, n)
		if _, err := io.ReadFull(d, p); err != nil {
			t.Fatalf("read %d after %d bytes: %v", n, len(got), err)
		}
		got = append(got, p...)
	}
	if !bytes.Equal(got, want) {
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("stream diverges from SP 800-90A reference at byte %d: got %#x want %#x", i, got[i], want[i])
			}
		}
	}
}

func TestDeterministicIsReproducible(t *testing.T) {
	a := NewDeterministic([]byte("split seed"))
	b := NewDeterministic([]byte("split seed"))
	c := NewDeterministic([]byte("other seed"))
	pa, pb, pc := make([]byte, 4096), make([]byte, 4096), make([]byte, 4096)
	for _, rd := range []struct {
		r *DRBG
		p []byte
	}{{a, pa}, {b, pb}, {c, pc}} {
		if _, err := io.ReadFull(rd.r, rd.p); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(pa, pb) {
		t.Fatal("same seed produced different streams")
	}
	if bytes.Equal(pa, pc) {
		t.Fatal("different seeds produced the same stream")
	}
}

// ---- state hygiene ---------------------------------------------------------

func TestServedOutputIsScrubbed(t *testing.T) {
	d := NewDeterministic([]byte("scrub"))
	p := make([]byte, 1000)
	if _, err := io.ReadFull(d, p); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d.off; i++ {
		if d.buf[i] != 0 {
			t.Fatalf("served byte %d still resident in state buffer", i)
		}
	}
	if bytes.Equal(p[:16], make([]byte, 16)) {
		t.Fatal("output is zero: scrub test is vacuous")
	}
}

func TestRekeyAcrossBatches(t *testing.T) {
	// The key must change at every batch boundary (backtracking
	// resistance); two consecutive batches must differ even under a
	// pathological all-zero state check.
	d := NewDeterministic([]byte("rekey"))
	k0 := d.key
	p := make([]byte, batchLen)
	if _, err := io.ReadFull(d, p); err != nil {
		t.Fatal(err)
	}
	k1 := d.key
	if k0 == k1 {
		t.Fatal("key unchanged across a generate batch")
	}
}

// ---- reseed policy ---------------------------------------------------------

func TestReseedOnInterval(t *testing.T) {
	src := &fixedEntropy{chunks: [][]byte{seed48(1), seed48(2), seed48(3)}}
	d, err := NewWithEntropy(src)
	if err != nil {
		t.Fatal(err)
	}
	if src.reads != 1 {
		t.Fatalf("instantiate consumed %d entropy reads, want 1", src.reads)
	}
	p := make([]byte, 64*1024)
	for drawn := 0; drawn <= reseedAfter; drawn += len(p) {
		if _, err := io.ReadFull(d, p); err != nil {
			t.Fatal(err)
		}
	}
	if src.reads < 2 {
		t.Fatalf("no reseed after %d generated bytes", reseedAfter+len(p))
	}
}

func TestReseedOnFork(t *testing.T) {
	src := &fixedEntropy{chunks: [][]byte{seed48(1), seed48(2)}}
	d, err := NewWithEntropy(src)
	if err != nil {
		t.Fatal(err)
	}
	d.pid = os.Getpid() + 1 // simulate the child side of a fork
	p := make([]byte, batchLen+1)
	if _, err := io.ReadFull(d, p); err != nil {
		t.Fatal(err)
	}
	if src.reads != 2 {
		t.Fatalf("pid change did not force a reseed (%d entropy reads)", src.reads)
	}
	if d.pid != os.Getpid() {
		t.Fatal("reseed did not readopt the current pid")
	}
}

func TestDeterministicNeverReseeds(t *testing.T) {
	d := NewDeterministic([]byte("no entropy"))
	d.generated = reseedAfter + 1
	p := make([]byte, batchLen)
	if _, err := io.ReadFull(d, p); err != nil {
		t.Fatalf("deterministic instance tried to reseed: %v", err)
	}
}

// ---- error paths -----------------------------------------------------------

func TestEntropyFailureIsSentinel(t *testing.T) {
	_, err := NewWithEntropy(&fixedEntropy{})
	if !errors.Is(err, ErrEntropy) {
		t.Fatalf("instantiate error %v is not ErrEntropy", err)
	}

	// Mid-stream: deliver one seed, then fail at the interval reseed. The
	// bytes served before the failure must be counted.
	src := &fixedEntropy{chunks: [][]byte{seed48(9)}}
	d, err := NewWithEntropy(src)
	if err != nil {
		t.Fatal(err)
	}
	d.generated = reseedAfter // next refill must reseed, and will fail
	p := make([]byte, 2*batchLen)
	n, err := d.Read(p)
	if !errors.Is(err, ErrEntropy) {
		t.Fatalf("mid-stream entropy failure %v is not ErrEntropy", err)
	}
	if n != 0 {
		// The buffer was empty when the reseed fired, so nothing was
		// served first; a partial serve would have returned its count.
		t.Fatalf("short read returned n=%d", n)
	}
}

// ---- counter arithmetic ----------------------------------------------------

func TestCounterArithmetic(t *testing.T) {
	cases := []struct {
		start []byte
		add   uint64
	}{
		{bytes.Repeat([]byte{0}, 16), 1},
		{bytes.Repeat([]byte{0xff}, 16), 1},                                       // full wrap
		{append(bytes.Repeat([]byte{0}, 8), bytes.Repeat([]byte{0xff}, 8)...), 1}, // 64-bit carry
		{bytes.Repeat([]byte{0xfe}, 16), 1<<40 + 12345},
		{bytes.Repeat([]byte{0xff}, 16), 1 << 63},
	}
	for _, c := range cases {
		var v [blockLen]byte
		copy(v[:], c.start)
		addTo(&v, c.add)
		want := new(big.Int).SetBytes(c.start)
		want.Add(want, new(big.Int).SetUint64(c.add)).Mod(want, refMod)
		var w [blockLen]byte
		want.FillBytes(w[:])
		if v != w {
			t.Fatalf("addTo(%x, %d) = %x, want %x", c.start, c.add, v, w)
		}

		copy(v[:], c.start)
		incr(&v)
		want.SetBytes(c.start).Add(want, big.NewInt(1)).Mod(want, refMod)
		want.FillBytes(w[:])
		if v != w {
			t.Fatalf("incr(%x) = %x, want %x", c.start, v, w)
		}
	}
}

// ---- statistical smoke -----------------------------------------------------

// TestByteFrequencySmoke is the chi-square goodness-of-fit smoke check on a
// fixed deterministic stream: 1 MiB over 256 byte bins has 255 degrees of
// freedom, so the statistic concentrates at 255 ± 22.6; the accepted window
// below is ±5σ. The seed is fixed, so this is a regression tripwire for
// keystream damage (stuck counters, overlapping batches, scrub bleeding
// into live output), not a flaky randomness test.
func TestByteFrequencySmoke(t *testing.T) {
	d := NewDeterministic([]byte("chi-square smoke"))
	p := make([]byte, 1<<20)
	if _, err := io.ReadFull(d, p); err != nil {
		t.Fatal(err)
	}
	var counts [256]int
	ones := 0
	for _, b := range p {
		counts[b]++
		for x := b; x != 0; x &= x - 1 {
			ones++
		}
	}
	expected := float64(len(p)) / 256
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 < 140 || chi2 > 370 {
		t.Fatalf("byte-frequency chi-square %.1f outside [140, 370]", chi2)
	}
	bits := float64(len(p) * 8)
	if frac := float64(ones) / bits; frac < 0.499 || frac > 0.501 {
		t.Fatalf("monobit fraction %.5f outside [0.499, 0.501]", frac)
	}
}

// ---- allocation discipline -------------------------------------------------

func TestSteadyStateReadDoesNotAllocate(t *testing.T) {
	d := NewDeterministic([]byte("alloc pin"))
	warm := make([]byte, 1)
	if _, err := d.Read(warm); err != nil { // prime the batch buffer
		t.Fatal(err)
	}
	p := make([]byte, 1024)
	if avg := testing.AllocsPerRun(15, func() { // 15 KiB: stays inside the batch
		if _, err := d.Read(p); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("steady-state Read allocates %.1f times per call, want 0", avg)
	}
}

func TestRefillAllocBudget(t *testing.T) {
	d := NewDeterministic([]byte("refill pin"))
	p := make([]byte, batchLen)
	// Every Read below drains exactly one batch, so each run pays one
	// refill: one AES cipher, one CTR stream, and their setup — a fixed
	// cost amortized over 16 KiB. The budget has headroom for stdlib
	// internals but catches a per-read or per-block allocation creeping in.
	if avg := testing.AllocsPerRun(20, func() {
		if _, err := io.ReadFull(d, p); err != nil {
			t.Fatal(err)
		}
	}); avg > 12 {
		t.Fatalf("refill allocates %.1f times per batch, budget 12", avg)
	}
}
