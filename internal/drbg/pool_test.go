package drbg

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
)

func deterministicPool(seed string) *Pool {
	n := 0
	var mu sync.Mutex
	return &Pool{newState: func() (*DRBG, error) {
		mu.Lock()
		defer mu.Unlock()
		n++
		return NewDeterministic(append([]byte(seed), byte(n))), nil
	}}
}

func TestPoolReadRecyclesState(t *testing.T) {
	p := deterministicPool("recycle")
	a := make([]byte, 100)
	if _, err := io.ReadFull(p, a); err != nil {
		t.Fatal(err)
	}
	// A second read must continue the same state's stream, not restart a
	// fresh one: the slot round-trips the instance.
	b := make([]byte, 100)
	if _, err := io.ReadFull(p, b); err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 200)
	if _, err := io.ReadFull(NewDeterministic(append([]byte("recycle"), 1)), want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(append(a, b...), want) {
		t.Fatal("pool did not recycle the single caller's state")
	}
}

func TestPoolConcurrentReads(t *testing.T) {
	p := &Pool{}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 4096)
			for i := 0; i < 50; i++ {
				if _, err := io.ReadFull(p, buf); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestPoolPropagatesEntropyError(t *testing.T) {
	p := &Pool{newState: func() (*DRBG, error) {
		return NewWithEntropy(&fixedEntropy{})
	}}
	if _, err := p.Read(make([]byte, 16)); !errors.Is(err, ErrEntropy) {
		t.Fatalf("pool error %v is not ErrEntropy", err)
	}
}

func TestPoolDiscardsFailedState(t *testing.T) {
	// One good seed, then entropy goes dark. The state that hits the
	// failed reseed must not be recycled: the next Read builds fresh
	// (and fails too, but through the constructor, not a wedged state).
	src := &fixedEntropy{chunks: [][]byte{seed48(7)}}
	built := 0
	p := &Pool{newState: func() (*DRBG, error) {
		built++
		d, err := NewWithEntropy(src)
		if err != nil {
			return nil, err
		}
		d.generated = reseedAfter // poison: next refill reseeds and fails
		return d, nil
	}}
	if _, err := p.Read(make([]byte, 16)); !errors.Is(err, ErrEntropy) {
		t.Fatalf("want ErrEntropy, got %v", err)
	}
	if p.slot.Load() != nil {
		t.Fatal("failed state returned to the slot")
	}
	if _, err := p.Read(make([]byte, 16)); !errors.Is(err, ErrEntropy) {
		t.Fatalf("want ErrEntropy from rebuilt state, got %v", err)
	}
	if built != 2 {
		t.Fatalf("pool built %d states, want 2 (no recycling of the failed one)", built)
	}
}

func TestPoolSteadyStateReadDoesNotAllocate(t *testing.T) {
	p := deterministicPool("pool alloc")
	warm := make([]byte, 1)
	if _, err := p.Read(warm); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1024)
	if avg := testing.AllocsPerRun(15, func() {
		if _, err := p.Read(buf); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("steady-state Pool.Read allocates %.1f times per call, want 0", avg)
	}
}
