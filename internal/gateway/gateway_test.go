package gateway

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"remicss/internal/obs"
	"remicss/internal/remicss"
	"remicss/internal/sharing"
	"remicss/internal/udptrans"
	"remicss/internal/wire"
)

// marshalSession builds one valid v2 datagram for tests.
func marshalSession(t testing.TB, session uint64, payload []byte) []byte {
	t.Helper()
	d, err := wire.AppendMarshalSession(nil, wire.SharePacket{
		Seq: 1, Session: session, K: 2, M: 3, Index: 1, SentAt: 1, Payload: payload,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSessionTable(t *testing.T) {
	s := NewServer(ServerConfig{Shards: 4})
	if _, err := s.Register(0, "a", func([]byte) {}); err == nil {
		t.Fatal("session 0 was accepted")
	}
	if _, err := s.Register(7, "a", nil); err == nil {
		t.Fatal("nil handler was accepted")
	}
	sess, err := s.Register(7, "a", func([]byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register(7, "b", func([]byte) {}); err == nil {
		t.Fatal("duplicate session ID was accepted")
	}
	if got := s.Lookup(7); got != sess {
		t.Fatalf("Lookup(7) = %v, want the registered session", got)
	}
	if got := s.Sessions(); got != 1 {
		t.Fatalf("Sessions() = %d, want 1", got)
	}
	if sess.ID() != 7 || sess.Tenant() != "a" {
		t.Fatalf("session identity = (%d, %q)", sess.ID(), sess.Tenant())
	}
	sess.Close()
	sess.Close() // idempotent
	if got := s.Lookup(7); got != nil {
		t.Fatalf("Lookup(7) after close = %v, want nil", got)
	}
	if got := s.Sessions(); got != 0 {
		t.Fatalf("Sessions() after close = %d, want 0", got)
	}
	// Closing a stale handle after the ID was re-registered must not evict
	// the new session.
	again, err := s.Register(7, "a", func([]byte) {})
	if err != nil {
		t.Fatal(err)
	}
	sess.Close()
	if got := s.Lookup(7); got != again {
		t.Fatal("stale Close evicted the re-registered session")
	}
}

func TestDispatchRouting(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewServer(ServerConfig{Shards: 8, Metrics: reg})
	var got7, got9 [][]byte
	if _, err := s.Register(7, "a", func(d []byte) { got7 = append(got7, append([]byte(nil), d...)) }); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register(9, "b", func(d []byte) { got9 = append(got9, append([]byte(nil), d...)) }); err != nil {
		t.Fatal(err)
	}

	d7 := marshalSession(t, 7, []byte("seven"))
	d9 := marshalSession(t, 9, []byte("nine"))
	s.Dispatch(d7)
	s.Dispatch(d9)
	s.Dispatch(d7)
	if len(got7) != 2 || len(got9) != 1 {
		t.Fatalf("routing: session 7 got %d, session 9 got %d", len(got7), len(got9))
	}

	// Unknown session, malformed header, and sessionless (v1) datagrams
	// are counted, not delivered.
	s.Dispatch(marshalSession(t, 12345, []byte("nobody")))
	s.Dispatch([]byte("not a remicss datagram"))
	v1, err := wire.Marshal(wire.SharePacket{Seq: 1, K: 2, M: 3, Index: 1, SentAt: 1, Payload: []byte("v1")})
	if err != nil {
		t.Fatal(err)
	}
	s.Dispatch(v1)
	if got := reg.Counter("remicss_gateway_unknown_session_total").Value(); got != 2 {
		t.Fatalf("unknown_session_total = %d, want 2 (unknown ID + sessionless)", got)
	}
	if got := reg.Counter("remicss_gateway_malformed_total").Value(); got != 1 {
		t.Fatalf("malformed_total = %d, want 1", got)
	}
	if got := reg.Counter("remicss_gateway_datagrams_total", obs.Label{Key: "tenant", Value: "a"}).Value(); got != 2 {
		t.Fatalf("tenant a datagrams = %d, want 2", got)
	}
}

func TestDispatchSessionless(t *testing.T) {
	var legacy int
	s := NewServer(ServerConfig{Shards: 4, Sessionless: func([]byte) { legacy++ }})
	v1, err := wire.Marshal(wire.SharePacket{Seq: 1, K: 2, M: 3, Index: 1, SentAt: 1, Payload: []byte("v1")})
	if err != nil {
		t.Fatal(err)
	}
	s.Dispatch(v1)
	if legacy != 1 {
		t.Fatalf("sessionless handler ran %d times, want 1", legacy)
	}
	if got := s.Metrics().Counter("remicss_gateway_unknown_session_total").Value(); got != 0 {
		t.Fatalf("sessionless datagram counted as unknown (%d)", got)
	}
}

// TestDispatchNoAlloc pins the routing hot path at zero heap allocations
// per datagram, instrumentation on.
func TestDispatchNoAlloc(t *testing.T) {
	s := NewServer(ServerConfig{Shards: 8, Metrics: obs.NewRegistry()})
	var n int
	if _, err := s.Register(42, "a", func(d []byte) { n += len(d) }); err != nil {
		t.Fatal(err)
	}
	d := marshalSession(t, 42, []byte("payload"))
	if allocs := testing.AllocsPerRun(500, func() { s.Dispatch(d) }); allocs != 0 {
		t.Fatalf("Dispatch allocates %v per datagram, want 0", allocs)
	}
	if n == 0 {
		t.Fatal("handler never ran")
	}
}

// TestDispatchConcurrentRegistration races dispatch against registration
// and unregistration; run under -race this pins the lock-free read path.
func TestDispatchConcurrentRegistration(t *testing.T) {
	s := NewServer(ServerConfig{Shards: 4})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			d := marshalSession(t, uint64(100+g), []byte("x"))
			for {
				select {
				case <-stop:
					return
				default:
					s.Dispatch(d)
				}
			}
		}(g)
	}
	for i := 0; i < 500; i++ {
		id := uint64(100 + i%3)
		if sess, err := s.Register(id, "t", func([]byte) {}); err == nil {
			sess.Close()
		}
	}
	close(stop)
	wg.Wait()
}

// gatewaySession is one end-to-end session: a sender over the shared pool
// and a receiver registered at the server.
type gatewaySession struct {
	id        uint64
	snd       *remicss.Sender
	delivered map[string]bool
	mu        sync.Mutex
}

// TestGatewayEndToEnd runs several complete sessions over one shared
// socket pool and one listener, under every compiled batch mode, and
// checks each session's receiver reconstructs exactly its own payloads —
// the byte-identical, no-crosstalk property the whole design hangs on.
func TestGatewayEndToEnd(t *testing.T) {
	for _, mode := range udptrans.BatchModes() {
		t.Run(mode, func(t *testing.T) {
			restore, err := udptrans.ForceBatchMode(mode)
			if err != nil {
				t.Fatal(err)
			}
			defer restore()

			const channels = 3
			addrs := make([]string, channels)
			for i := range addrs {
				addrs[i] = "127.0.0.1:0"
			}
			lis, err := udptrans.Listen(addrs)
			if err != nil {
				t.Fatal(err)
			}
			defer lis.Close()

			reg := obs.NewRegistry()
			srv := NewServer(ServerConfig{Shards: 16, Metrics: reg})

			const sessions = 4
			const perSession = 20
			sess := make([]*gatewaySession, sessions)
			for i := range sess {
				gs := &gatewaySession{id: uint64(i + 1), delivered: make(map[string]bool)}
				recv, err := remicss.NewReceiver(remicss.ReceiverConfig{
					Scheme: sharing.NewAuto(nil),
					Clock:  udptrans.WallClock,
					OnSymbol: func(_ uint64, payload []byte, _ time.Duration) {
						gs.mu.Lock()
						gs.delivered[string(payload)] = true
						gs.mu.Unlock()
					},
				})
				if err != nil {
					t.Fatal(err)
				}
				if _, err := srv.Register(gs.id, fmt.Sprintf("tenant-%d", i%2), recv.HandleDatagram); err != nil {
					t.Fatal(err)
				}
				sess[i] = gs
			}
			srv.Attach(lis)

			pool, err := DialPool(lis.Addrs(), PoolConfig{Batch: 8, Metrics: reg})
			if err != nil {
				t.Fatal(err)
			}
			defer pool.Close()
			for _, gs := range sess {
				snd, err := pool.NewSender(remicss.SenderConfig{
					Scheme:  sharing.NewAuto(nil),
					Chooser: remicss.FixedChooser{K: 2, Mask: 1<<channels - 1},
					Clock:   udptrans.WallClock,
				}, gs.id)
				if err != nil {
					t.Fatal(err)
				}
				gs.snd = snd
			}

			for _, gs := range sess {
				payloads := make([][]byte, perSession)
				for j := range payloads {
					payloads[j] = []byte(fmt.Sprintf("session-%d-payload-%d", gs.id, j))
				}
				if _, err := gs.snd.SendBatch(payloads); err != nil {
					t.Fatal(err)
				}
			}
			pool.Flush()

			deadline := time.Now().Add(5 * time.Second)
			for _, gs := range sess {
				for {
					gs.mu.Lock()
					n := len(gs.delivered)
					gs.mu.Unlock()
					if n == perSession {
						break
					}
					if time.Now().After(deadline) {
						t.Fatalf("session %d delivered %d of %d symbols under mode %s", gs.id, n, perSession, mode)
					}
					time.Sleep(5 * time.Millisecond)
				}
				gs.mu.Lock()
				for j := 0; j < perSession; j++ {
					want := fmt.Sprintf("session-%d-payload-%d", gs.id, j)
					if !gs.delivered[want] {
						t.Fatalf("session %d missing payload %q", gs.id, want)
					}
				}
				gs.mu.Unlock()
			}
			if got := reg.Counter("remicss_gateway_unknown_session_total").Value(); got != 0 {
				t.Fatalf("cross-session leakage: %d datagrams hit no session", got)
			}
		})
	}
}
