// Package gateway multiplexes many ReMICSS sessions over one shared pool
// of UDP sockets. The paper's protocol is point-to-point — one sender, one
// receiver, one socket per channel — which does not survive contact with a
// multi-tenant deployment: ten thousand sessions would need ten thousand
// socket sets and as many reader goroutines. The gateway keeps the paper's
// per-session protocol machinery intact and changes only the transport
// arrangement:
//
//   - every share carries its session ID in the v2 wire header
//     (wire.AppendMarshalSession), stamped by a Sender whose
//     SenderConfig.Session is set;
//   - the Server side owns one udptrans.Listener (one socket per channel)
//     and dispatches each incoming datagram to its session by peeking the
//     header (wire.PeekSession) — no copy, no full parse;
//   - the session table is sharded like the receiver's reassembly table
//     (splitmix64-mixed ID, power-of-two shards) with a lock-free read
//     path, so ingest goroutines never contend with each other or with
//     registration;
//   - the client side shares one socket set across all its sessions (Pool),
//     coalescing their datagrams into kernel batches
//     (udptrans.Link.SendBatch).
//
// Per-tenant observability is capped: tenant label values are admitted
// first-come up to ServerConfig.TenantCap, and every later tenant shares
// one "other"-labeled series, so a hostile or buggy tenant namespace cannot
// blow up metric cardinality.
package gateway

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"remicss/internal/obs"
	"remicss/internal/shardix"
	"remicss/internal/udptrans"
	"remicss/internal/wire"
)

// DefaultShards is the default session-table shard count. Sized for
// registration-heavy workloads: registering n sessions costs O(n²/shards)
// map-entry copies under the copy-on-write scheme, so at 100k sessions a
// 1024-way split keeps the total rebuild work in the low millions.
const DefaultShards = 1024

// DefaultTenantCap is the default bound on distinct tenant label values.
const DefaultTenantCap = 64

// Gateway errors.
var (
	// ErrDuplicateSession means Register was given an ID already in use.
	ErrDuplicateSession = errors.New("gateway: session ID already registered")
	// ErrZeroSession means session ID 0 was requested; 0 is the wire
	// format's "no session" value carried by v1 headers.
	ErrZeroSession = errors.New("gateway: session ID 0 is reserved for sessionless (v1) traffic")
)

// ServerConfig configures a Server.
type ServerConfig struct {
	// Shards is the session-table shard count, rounded up to a power of
	// two; 0 picks DefaultShards.
	Shards int
	// TenantCap bounds distinct tenant label values on the per-tenant
	// series; 0 picks DefaultTenantCap. See tenantSeries.
	TenantCap int
	// Metrics receives the gateway's series. Nil gives the server a
	// private registry.
	Metrics *obs.Registry
	// Sessionless, when non-nil, receives datagrams that carry no session
	// ID (v1 headers, which parse as session 0) — the escape hatch that
	// lets a gateway front one legacy point-to-point receiver. Nil counts
	// such datagrams as unknown-session drops. Like session handlers, it
	// must not retain the slice after returning.
	Sessionless func(datagram []byte)
}

// serverMetrics are the dispatch-path handles, resolved at construction.
type serverMetrics struct {
	reg       *obs.Registry
	malformed *obs.Counter
	unknown   *obs.Counter
}

// Server is the receiving half of the gateway: a sharded session table
// plus the dispatch path that routes every incoming datagram to its
// session. Safe for concurrent use; Dispatch is lock-free.
type Server struct {
	shards  []gwShard
	mask    uint64
	met     serverMetrics
	tenants *tenantSeries
	active  atomic.Int64

	sessionless func(datagram []byte)
}

// gwShard is one slice of the session table. Writers (Register and
// Unregister) serialize on mu and replace the map copy-on-write; the
// dispatch path loads the pointer atomically and reads the immutable map
// with no lock, so ingest goroutines are never blocked by registration.
// The trailing pad keeps neighboring shards' mutexes off one cache line.
type gwShard struct {
	mu sync.Mutex
	// sessions points at this shard's current immutable ID→session map.
	// guarded by mu for writers; readers use the atomic load only.
	sessions atomic.Pointer[map[uint64]*Session]
	_        [40]byte
}

// Session is one registered session: the routing entry datagrams with its
// ID are dispatched to.
type Session struct {
	id     uint64
	tenant string
	// handle receives this session's datagrams, possibly concurrently
	// (one call per ingest goroutine); it must not retain the slice.
	handle func(datagram []byte)
	// dgrams is the session's per-tenant datagram counter, resolved once
	// at Register so dispatch is one atomic increment.
	dgrams *obs.Counter
	srv    *Server
}

// ID returns the session's wire ID.
func (s *Session) ID() uint64 { return s.id }

// Tenant returns the tenant the session was registered under.
func (s *Session) Tenant() string { return s.tenant }

// Close unregisters the session; datagrams for its ID count as unknown
// afterwards. Closing twice is harmless.
func (s *Session) Close() { s.srv.unregister(s) }

// NewServer builds a session-routing server.
func NewServer(cfg ServerConfig) *Server {
	shards := cfg.Shards
	if shards <= 0 {
		shards = DefaultShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	capN := cfg.TenantCap
	if capN <= 0 {
		capN = DefaultTenantCap
	}
	s := &Server{
		shards: make([]gwShard, n),
		mask:   uint64(n - 1),
		met: serverMetrics{
			reg:       reg,
			malformed: reg.Counter("remicss_gateway_malformed_total"),
			unknown:   reg.Counter("remicss_gateway_unknown_session_total"),
		},
		tenants:     newTenantSeries(reg, capN),
		sessionless: cfg.Sessionless,
	}
	empty := make(map[uint64]*Session)
	for i := range s.shards {
		s.shards[i].sessions.Store(&empty) //lint:allow mutexguard construction: the server is not shared until NewServer returns
	}
	return s
}

// Metrics returns the registry holding the gateway's series.
func (s *Server) Metrics() *obs.Registry { return s.met.reg }

// Sessions returns the number of currently registered sessions.
func (s *Server) Sessions() int { return int(s.active.Load()) }

// Register adds a session under the given wire ID and tenant. handle
// receives the session's datagrams directly from the ingest goroutines
// (possibly concurrently — remicss.Receiver.HandleDatagram is safe) and
// must not retain the slice after returning. The ID must be nonzero and
// not in use.
func (s *Server) Register(id uint64, tenant string, handle func(datagram []byte)) (*Session, error) {
	if id == 0 {
		return nil, ErrZeroSession
	}
	if handle == nil {
		return nil, fmt.Errorf("gateway: nil handler for session %d", id)
	}
	th := s.tenants.handles(tenant)
	sess := &Session{id: id, tenant: tenant, handle: handle, dgrams: th.datagrams, srv: s}
	sh := &s.shards[shardix.Index(id, s.mask)]
	sh.mu.Lock()
	cur := *sh.sessions.Load()
	if _, dup := cur[id]; dup {
		sh.mu.Unlock()
		return nil, fmt.Errorf("%w: %d", ErrDuplicateSession, id)
	}
	next := make(map[uint64]*Session, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[id] = sess
	sh.sessions.Store(&next)
	sh.mu.Unlock()
	s.active.Add(1)
	th.active.Add(1)
	return sess, nil
}

// unregister removes sess from the table, idempotently: only the entry
// that is actually this session is deleted, so closing twice (or closing
// after the ID was re-registered) removes nothing it should not.
func (s *Server) unregister(sess *Session) {
	sh := &s.shards[shardix.Index(sess.id, s.mask)]
	sh.mu.Lock()
	cur := *sh.sessions.Load()
	if cur[sess.id] != sess {
		sh.mu.Unlock()
		return
	}
	next := make(map[uint64]*Session, len(cur)-1)
	for k, v := range cur {
		if k != sess.id {
			next[k] = v
		}
	}
	sh.sessions.Store(&next)
	sh.mu.Unlock()
	s.active.Add(-1)
	s.tenants.handles(sess.tenant).active.Add(-1)
}

// Lookup returns the session registered under id, or nil. Lock-free.
//
//lint:allow mutexguard lock-free read: the map is immutable and the pointer load is atomic
func (s *Server) Lookup(id uint64) *Session {
	sh := &s.shards[shardix.Index(id, s.mask)]
	return (*sh.sessions.Load())[id]
}

// Dispatch routes one datagram to its session's handler: peek the session
// ID from the header (no full parse, no copy), look the session up on the
// lock-free path, and hand the datagram over. Malformed headers and
// unknown sessions are counted and dropped — exactly the failure
// containment a shared ingest path needs, since one tenant's garbage must
// not cost another tenant anything but the peek.
//
// Dispatch is the ServeBatch/ServeConcurrent handler; like them it does
// not retain the slice.
//
//remicss:noalloc
//lint:allow mutexguard lock-free read: the map is immutable and the pointer load is atomic
func (s *Server) Dispatch(datagram []byte) {
	id, ok := wire.PeekSession(datagram)
	if !ok {
		s.met.malformed.Inc()
		return
	}
	if id == 0 {
		if s.sessionless != nil {
			s.sessionless(datagram)
			return
		}
		s.met.unknown.Inc()
		return
	}
	sh := &s.shards[shardix.Index(id, s.mask)]
	sess := (*sh.sessions.Load())[id]
	if sess == nil {
		s.met.unknown.Inc()
		return
	}
	sess.dgrams.Inc()
	sess.handle(datagram)
}

// Attach starts consuming datagrams from the listener's sockets through
// the batched receive path (recvmmsg where available), one ingest
// goroutine per socket, all funneling into Dispatch. Returns immediately;
// closing the listener stops ingest.
func (s *Server) Attach(lis *udptrans.Listener) {
	lis.ServeBatch(s.Dispatch)
}
