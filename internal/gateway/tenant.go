package gateway

import (
	"sync"

	"remicss/internal/obs"
)

// OverflowTenant is the label value under which every tenant beyond the
// cardinality cap is aggregated. A real tenant literally named "other"
// shares the bucket.
const OverflowTenant = "other"

// tenantHandles are the per-tenant series handles a session resolves once
// at registration.
type tenantHandles struct {
	// datagrams is remicss_gateway_datagrams_total{tenant=...}.
	datagrams *obs.Counter
	// active is remicss_gateway_sessions_active{tenant=...}.
	active *obs.Gauge
}

// tenantSeries hands out per-tenant metric handles with a hard cardinality
// cap. The first cap distinct tenant names each get their own labeled
// series; every tenant after that shares the OverflowTenant bucket, and
// remicss_gateway_tenants_capped_total counts how many were collapsed.
// Admission is deterministic: whether a tenant owns its series depends
// only on the order tenants first appear (registration is serialized on
// mu), and a tenant resolved once keeps the same handles for the server's
// lifetime — so a restart replays the same admissions given the same
// registration order.
type tenantSeries struct {
	reg *obs.Registry
	cap int

	mu sync.Mutex
	// byTenant maps admitted tenant names to their handles. guarded by mu.
	byTenant map[string]*tenantHandles
	// capped tracks tenant names already counted against
	// tenants_capped_total, so a tenant registering many sessions is
	// counted once. guarded by mu.
	capped map[string]bool

	other       *tenantHandles
	cappedTotal *obs.Counter
}

// newTenantSeries builds the capped per-tenant series set. The overflow
// bucket is registered eagerly so the series exists (at zero) even before
// any tenant overflows.
func newTenantSeries(reg *obs.Registry, capN int) *tenantSeries {
	return &tenantSeries{
		reg:      reg,
		cap:      capN,
		byTenant: make(map[string]*tenantHandles),
		capped:   make(map[string]bool),
		other: &tenantHandles{
			datagrams: reg.Counter("remicss_gateway_datagrams_total", obs.Label{Key: "tenant", Value: OverflowTenant}),
			active:    reg.Gauge("remicss_gateway_sessions_active", obs.Label{Key: "tenant", Value: OverflowTenant}),
		},
		cappedTotal: reg.Counter("remicss_gateway_tenants_capped_total"),
	}
}

// handles resolves the series handles for tenant, admitting it if the cap
// allows. Not a hot path: sessions resolve handles once at registration.
func (t *tenantSeries) handles(tenant string) *tenantHandles {
	t.mu.Lock()
	defer t.mu.Unlock()
	if h, ok := t.byTenant[tenant]; ok {
		return h
	}
	if tenant == OverflowTenant || len(t.byTenant) >= t.cap {
		if !t.capped[tenant] && tenant != OverflowTenant {
			t.capped[tenant] = true
			t.cappedTotal.Inc()
		}
		return t.other
	}
	h := &tenantHandles{
		datagrams: t.reg.Counter("remicss_gateway_datagrams_total", obs.Label{Key: "tenant", Value: tenant}),
		active:    t.reg.Gauge("remicss_gateway_sessions_active", obs.Label{Key: "tenant", Value: tenant}),
	}
	t.byTenant[tenant] = h
	return h
}
