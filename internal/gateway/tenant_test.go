package gateway

import (
	"fmt"
	"testing"

	"remicss/internal/obs"
)

// tenantValues lists the distinct tenant label values present on the named
// series in the registry.
func tenantValues(reg *obs.Registry, series string) map[string]int64 {
	out := make(map[string]int64)
	for _, s := range reg.Gather() {
		if s.Name != series {
			continue
		}
		for _, l := range s.Labels {
			if l.Key == "tenant" {
				out[l.Value] = s.Value
			}
		}
	}
	return out
}

// TestTenantCardinalityCap pins the hard cap on per-tenant series: the
// first TenantCap distinct tenants get their own labeled series, every
// later tenant collapses into the shared "other" bucket — counters and
// gauges both — and the registry never grows past cap+1 tenant values.
func TestTenantCardinalityCap(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewServer(ServerConfig{Shards: 4, TenantCap: 2, Metrics: reg})

	// a and b are admitted; c and d arrive after the cap and share the
	// overflow bucket.
	for i, tenant := range []string{"a", "b", "c", "d"} {
		if _, err := s.Register(uint64(i+1), tenant, func([]byte) {}); err != nil {
			t.Fatal(err)
		}
	}
	active := tenantValues(reg, "remicss_gateway_sessions_active")
	want := map[string]int64{"a": 1, "b": 1, OverflowTenant: 2}
	if len(active) != len(want) {
		t.Fatalf("sessions_active tenants = %v, want %v", active, want)
	}
	for k, v := range want {
		if active[k] != v {
			t.Fatalf("sessions_active{tenant=%q} = %d, want %d", k, active[k], v)
		}
	}
	if got := reg.Counter("remicss_gateway_tenants_capped_total").Value(); got != 2 {
		t.Fatalf("tenants_capped_total = %d, want 2", got)
	}

	// Dispatch for a capped tenant's session lands in the other bucket.
	s.Dispatch(marshalSession(t, 3, []byte("c-traffic")))
	s.Dispatch(marshalSession(t, 1, []byte("a-traffic")))
	dgrams := tenantValues(reg, "remicss_gateway_datagrams_total")
	if dgrams["a"] != 1 || dgrams["b"] != 0 || dgrams[OverflowTenant] != 1 {
		t.Fatalf("datagrams by tenant = %v", dgrams)
	}

	// More sessions for an already-capped tenant do not re-count it, and
	// an admitted tenant keeps its own series.
	if _, err := s.Register(10, "c", func([]byte) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register(11, "a", func([]byte) {}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("remicss_gateway_tenants_capped_total").Value(); got != 2 {
		t.Fatalf("tenants_capped_total after repeats = %d, want 2", got)
	}
	active = tenantValues(reg, "remicss_gateway_sessions_active")
	if active["a"] != 2 || active[OverflowTenant] != 3 {
		t.Fatalf("sessions_active after repeats = %v", active)
	}

	// Closing sessions decrements whichever series they resolved to.
	s.Lookup(3).Close()
	active = tenantValues(reg, "remicss_gateway_sessions_active")
	if active[OverflowTenant] != 2 {
		t.Fatalf("sessions_active{other} after close = %d, want 2", active[OverflowTenant])
	}
}

// TestTenantCapDeterministic pins the admission rule: which tenants own
// series depends only on first-appearance order, so two servers seeing
// the same registration order expose identical tenant label sets.
func TestTenantCapDeterministic(t *testing.T) {
	order := []string{"x", "y", "z", "w", "x", "z"}
	build := func() map[string]int64 {
		reg := obs.NewRegistry()
		s := NewServer(ServerConfig{Shards: 4, TenantCap: 2, Metrics: reg})
		for i, tenant := range order {
			if _, err := s.Register(uint64(i+1), tenant, func([]byte) {}); err != nil {
				t.Fatal(err)
			}
		}
		return tenantValues(reg, "remicss_gateway_sessions_active")
	}
	a, b := build(), build()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same registration order produced different tenant sets: %v vs %v", a, b)
	}
	if _, ok := a["x"]; !ok {
		t.Fatal("first-seen tenant x lost its series")
	}
	if _, ok := a["z"]; ok {
		t.Fatal("beyond-cap tenant z kept its own series")
	}
	if a[OverflowTenant] != 3 {
		t.Fatalf("other bucket holds %d sessions, want 3", a[OverflowTenant])
	}
}

// TestTenantNamedOther pins the documented edge: a real tenant named
// "other" shares the overflow bucket and is never counted as capped.
func TestTenantNamedOther(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewServer(ServerConfig{Shards: 4, TenantCap: 8, Metrics: reg})
	if _, err := s.Register(1, OverflowTenant, func([]byte) {}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("remicss_gateway_tenants_capped_total").Value(); got != 0 {
		t.Fatalf("tenant literally named other counted as capped (%d)", got)
	}
	active := tenantValues(reg, "remicss_gateway_sessions_active")
	if active[OverflowTenant] != 1 || len(active) != 1 {
		t.Fatalf("sessions_active = %v, want only the other bucket", active)
	}
}
