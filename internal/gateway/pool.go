package gateway

import (
	"fmt"
	"sync"
	"time"

	"remicss/internal/obs"
	"remicss/internal/remicss"
	"remicss/internal/udptrans"
)

// DefaultBatch is the default per-socket coalescing threshold: a queue
// flushes to the kernel once it holds this many datagrams.
const DefaultBatch = 32

// PoolConfig configures a client Pool.
type PoolConfig struct {
	// Batch is the per-socket flush threshold; 0 picks DefaultBatch, 1
	// degenerates to one syscall per datagram.
	Batch int
	// Rate and Burst pace each underlying socket exactly as in
	// udptrans.Dial; Rate 0 disables pacing.
	Rate  float64
	Burst int
	// Metrics, when non-nil, instruments each underlying link with the
	// udp_* series, channel-indexed in Addrs order.
	Metrics *obs.Registry
}

// Pool is the sending half of the gateway: every session's sender shares
// one socket per channel, and their datagrams leave in kernel batches. A
// session is an ordinary remicss.Sender whose links (SessionLinks) enqueue
// marshaled shares into per-socket queues instead of writing them; each
// queue flushes through udptrans.Link.SendBatch — sendmmsg where available
// — once it holds Batch datagrams, or when Flush is called.
//
// Queueing semantics match the emulator's queue links: Send accepting a
// datagram means it was enqueued, and later pacing or socket drops surface
// in the link's udp_* metrics rather than in the sender's return values.
// A partially filled queue holds its datagrams until the next threshold
// crossing or Flush, so latency-sensitive callers should Flush at burst
// boundaries (remicss.Sender.SendBatch makes that one call per burst).
type Pool struct {
	links  []poolSocket
	queues []sendQueue
	qlinks []remicss.Link //remicss:secret
	batch  int
}

// poolSocket is the transport surface the pool drives, satisfied by
// *udptrans.Link. The indirection mirrors remicss.Link: dynamic dispatch is
// where the module's taint perimeter hands share bytes to the network, the
// same declared egress boundary the sender's links use.
type poolSocket interface {
	SendBatch(datagrams [][]byte) int
	Writable() bool
	Backlog() time.Duration
	Close() error
}

// sendQueue is one socket's coalescing buffer. The trailing pad keeps
// neighboring queues' mutexes off one cache line.
type sendQueue struct {
	mu sync.Mutex
	// pending holds datagrams awaiting the next flush; the backing buffers
	// are pool-owned and recycled through free. guarded by mu.
	pending [][]byte //remicss:secret
	// free holds recycled datagram buffers. guarded by mu.
	free [][]byte //remicss:secret
	// spare is the idle slice header that becomes pending after a flush
	// swap, so steady-state flushing reuses two stable backing arrays; it
	// aliases memory that held datagrams, hence stays in the secret
	// perimeter. guarded by mu.
	spare [][]byte //remicss:secret
	_     [40]byte
}

// DialPool opens one socket per address (the shared channel set) and
// builds the coalescing queues over them.
func DialPool(addrs []string, cfg PoolConfig) (*Pool, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("gateway: no pool addresses")
	}
	batch := cfg.Batch
	if batch <= 0 {
		batch = DefaultBatch
	}
	p := &Pool{batch: batch}
	for i, a := range addrs {
		l, err := udptrans.Dial(a, cfg.Rate, cfg.Burst)
		if err != nil {
			p.Close()
			return nil, err
		}
		if cfg.Metrics != nil {
			l.Instrument(cfg.Metrics, i)
		}
		p.links = append(p.links, l)
	}
	p.queues = make([]sendQueue, len(addrs))
	p.qlinks = make([]remicss.Link, len(addrs))
	for i := range p.qlinks {
		p.qlinks[i] = &queueLink{p: p, idx: i}
	}
	return p, nil
}

// SessionLinks returns the pool's channel set as remicss.Links, one per
// socket. Every session's sender is built over this same slice — that is
// the multiplexing — so the links are safe for concurrent use.
func (p *Pool) SessionLinks() []remicss.Link { return p.qlinks }

// NewSender builds a sender for one gateway session: cfg with
// SenderConfig.Session set to id (so every share carries the v2 header the
// server dispatches on), over the pool's shared links.
func (p *Pool) NewSender(cfg remicss.SenderConfig, id uint64) (*remicss.Sender, error) {
	if id == 0 {
		return nil, ErrZeroSession
	}
	cfg.Session = id
	return remicss.NewSender(cfg, p.qlinks)
}

// enqueue copies the datagram into queue i, flushing the queue if it
// reached the batch threshold. The copy is mandatory: the remicss sender
// recycles its marshal buffer, so the queue must own the bytes it holds.
func (p *Pool) enqueue(i int, datagram []byte) bool {
	q := &p.queues[i]
	q.mu.Lock()
	var buf []byte
	if n := len(q.free); n > 0 {
		buf = q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
	}
	buf = append(buf[:0], datagram...)
	q.pending = append(q.pending, buf)
	if len(q.pending) < p.batch {
		q.mu.Unlock()
		return true
	}
	burst := q.pending
	q.pending = q.spare[:0]
	q.spare = nil
	q.mu.Unlock()
	p.flushBurst(i, q, burst)
	return true
}

// flushBurst writes one swapped-out burst to socket i and recycles its
// buffers. Runs outside q.mu so enqueues continue during the writes.
func (p *Pool) flushBurst(i int, q *sendQueue, burst [][]byte) {
	if len(burst) == 0 {
		return
	}
	p.links[i].SendBatch(burst)
	q.mu.Lock()
	q.free = append(q.free, burst...)
	for j := range burst {
		burst[j] = nil
	}
	if q.spare == nil {
		q.spare = burst[:0]
	}
	q.mu.Unlock()
}

// Flush writes out every queue's pending datagrams regardless of the
// threshold. Call at burst boundaries.
func (p *Pool) Flush() {
	for i := range p.queues {
		q := &p.queues[i]
		q.mu.Lock()
		burst := q.pending
		q.pending = q.spare[:0]
		q.spare = nil
		q.mu.Unlock()
		p.flushBurst(i, q, burst)
	}
}

// Close flushes pending datagrams and releases the sockets.
func (p *Pool) Close() error {
	p.Flush()
	var firstErr error
	for _, l := range p.links {
		if l == nil {
			continue
		}
		if err := l.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// queueLink adapts one pool queue to the remicss.Link interface.
type queueLink struct {
	p   *Pool
	idx int
}

// Send enqueues the datagram for batched transmission; acceptance means
// "queued", with pacing and socket failures surfacing in link metrics.
func (q *queueLink) Send(datagram []byte) bool { return q.p.enqueue(q.idx, datagram) }

// Writable defers to the underlying socket's pacer.
func (q *queueLink) Writable() bool { return q.p.links[q.idx].Writable() }

// Backlog defers to the underlying socket's pacer.
func (q *queueLink) Backlog() time.Duration { return q.p.links[q.idx].Backlog() }
