// Package blakley implements Blakley's (k, m) threshold scheme
// ("Safeguarding cryptographic keys", 1979), the hyperplane-geometric
// counterpart to Shamir's polynomial scheme that the paper credits as the
// other origin of secret sharing.
//
// The secret byte s is the first coordinate of a point
// P = (s, r_2, ..., r_k) in GF(256)^k with r_i uniform. Each share is a
// hyperplane through P: a coefficient vector a_i and the value b_i = a_i·P.
// Any k shares determine P by solving the linear system; fewer than k
// shares leave P on an affine subspace whose first coordinate is uniform —
// provided the coefficient vectors are chosen so that
//
//  1. every k-subset of vectors is linearly independent (reconstruction),
//  2. e_1 lies outside the span of every (k-1)-subset (perfect secrecy:
//     otherwise the leftover line is parallel to the secret axis and the
//     secret is pinned).
//
// Split draws random vectors and verifies both conditions by enumeration,
// redrawing on the (rare) degenerate draw; this keeps the scheme honestly
// Blakley rather than collapsing it to Shamir's Vandermonde special case.
// Each share carries its coefficient vector, so shares are k bytes longer
// than the secret — the historical space disadvantage versus Shamir's
// single extra byte, measurable in this package's benchmarks.
package blakley

import (
	"errors"
	"fmt"
	"io"
	"math/bits"

	"remicss/internal/drbg"
	"remicss/internal/gf256"
)

// MaxShares bounds m so the subset verification stays tractable.
const MaxShares = 16

// maxRedraws bounds the retry loop for degenerate coefficient draws; with
// field size 256 a single redraw is already rare, so hitting this limit
// indicates a broken randomness source.
const maxRedraws = 64

// Errors.
var (
	ErrInvalidParams  = errors.New("blakley: invalid parameters")
	ErrEmptySecret    = errors.New("blakley: empty secret")
	ErrTooFewShares   = errors.New("blakley: not enough shares")
	ErrMalformedShare = errors.New("blakley: malformed share")
	ErrDegenerate     = errors.New("blakley: could not draw independent hyperplanes")
	ErrSingular       = errors.New("blakley: shares do not determine the secret")
)

// Share is one hyperplane: the coefficient vector (length k) and one
// constant term per secret byte.
type Share struct {
	// Coeffs is the hyperplane's normal vector a_i (length k).
	Coeffs []byte //remicss:secret
	// Values holds b_i = a_i · P_j for each secret byte j.
	Values []byte //remicss:secret
}

// Bytes serializes the share as coeffs || values (the coefficient length k
// is carried in the protocol header, not the share body).
func (s Share) Bytes() []byte {
	out := make([]byte, len(s.Coeffs)+len(s.Values))
	copy(out, s.Coeffs)
	copy(out[len(s.Coeffs):], s.Values)
	return out
}

// ParseShare splits the wire form back given the threshold k.
func ParseShare(b []byte, k int) (Share, error) {
	if k < 1 || len(b) < k+1 {
		return Share{}, fmt.Errorf("%w: %d bytes for k=%d", ErrMalformedShare, len(b), k)
	}
	return Share{
		Coeffs: append([]byte(nil), b[:k]...),
		Values: append([]byte(nil), b[k:]...),
	}, nil
}

// Splitter draws hyperplanes from a randomness source.
type Splitter struct {
	rand io.Reader //remicss:secret
}

// NewSplitter returns a Splitter; nil r means the shared DRBG pool
// (crypto/rand-seeded; see internal/drbg).
func NewSplitter(r io.Reader) *Splitter {
	if r == nil {
		r = drbg.Shared
	}
	return &Splitter{rand: r}
}

// Split shares the secret into m hyperplane shares with threshold k.
//
//remicss:secret secret
func (sp *Splitter) Split(secret []byte, k, m int) ([]Share, error) {
	if k < 1 || m < k || m > MaxShares {
		return nil, fmt.Errorf("%w: k=%d, m=%d", ErrInvalidParams, k, m)
	}
	if len(secret) == 0 {
		return nil, ErrEmptySecret
	}

	coeffs, err := sp.drawCoefficients(k, m)
	if err != nil {
		return nil, err
	}

	shares := make([]Share, m)
	for i := range shares {
		shares[i] = Share{Coeffs: coeffs[i], Values: make([]byte, len(secret))}
	}
	point := make([]byte, k)
	randoms := make([]byte, (k-1)*len(secret))
	if _, err := io.ReadFull(sp.rand, randoms); err != nil {
		return nil, fmt.Errorf("blakley: reading point randomness: %w", err)
	}
	for j, s := range secret {
		point[0] = s
		copy(point[1:], randoms[j*(k-1):(j+1)*(k-1)])
		for i := range shares {
			shares[i].Values[j] = dot(coeffs[i], point)
		}
	}
	return shares, nil
}

// drawCoefficients samples m vectors in GF(256)^k satisfying the
// reconstruction and secrecy conditions.
func (sp *Splitter) drawCoefficients(k, m int) ([][]byte, error) {
	buf := make([]byte, m*k)
	for attempt := 0; attempt < maxRedraws; attempt++ {
		if _, err := io.ReadFull(sp.rand, buf); err != nil {
			return nil, fmt.Errorf("blakley: reading coefficients: %w", err)
		}
		coeffs := make([][]byte, m)
		for i := range coeffs {
			coeffs[i] = append([]byte(nil), buf[i*k:(i+1)*k]...)
		}
		if verifyCoefficients(coeffs, k) {
			return coeffs, nil
		}
	}
	return nil, ErrDegenerate
}

// verifyCoefficients checks the two Blakley conditions by enumerating
// subsets.
func verifyCoefficients(coeffs [][]byte, k int) bool {
	m := len(coeffs)
	// Condition 1: every k-subset has rank k.
	for mask := uint32(0); mask < 1<<uint(m); mask++ {
		switch bits.OnesCount32(mask) {
		case k:
			if rank(selectRows(coeffs, mask)) != k {
				return false
			}
		case k - 1:
			// Condition 2: adding the secret axis e_1 must still raise the
			// rank, i.e. e_1 outside the span.
			rows := selectRows(coeffs, mask)
			e1 := make([]byte, k)
			e1[0] = 1
			if rank(append(rows, e1)) != k {
				return false
			}
		}
	}
	return true
}

func selectRows(coeffs [][]byte, mask uint32) [][]byte {
	var out [][]byte
	for i := range coeffs {
		if mask&(1<<uint(i)) != 0 {
			out = append(out, append([]byte(nil), coeffs[i]...))
		}
	}
	return out
}

// Combine reconstructs the secret from exactly k (or more; the first k are
// used) shares of a threshold-k split.
func Combine(shares []Share, k int) ([]byte, error) {
	if k < 1 {
		return nil, fmt.Errorf("%w: k=%d", ErrInvalidParams, k)
	}
	if len(shares) < k {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrTooFewShares, len(shares), k)
	}
	shares = shares[:k]
	length := len(shares[0].Values)
	matrix := make([][]byte, k)
	for i, s := range shares {
		if len(s.Coeffs) != k {
			return nil, fmt.Errorf("%w: share %d has %d coefficients, want %d",
				ErrMalformedShare, i, len(s.Coeffs), k)
		}
		if len(s.Values) != length || length == 0 {
			return nil, fmt.Errorf("%w: inconsistent value lengths", ErrMalformedShare)
		}
		matrix[i] = append([]byte(nil), s.Coeffs...)
	}
	inv, err := invert(matrix)
	if err != nil {
		return nil, err
	}
	// The secret is the first coordinate: s_j = (A^{-1} b_j)[0] = first row
	// of A^{-1} dotted with the value column.
	secret := make([]byte, length)
	col := make([]byte, k)
	for j := 0; j < length; j++ {
		for i := range shares {
			col[i] = shares[i].Values[j]
		}
		secret[j] = dot(inv[0], col)
	}
	return secret, nil
}

// dot computes the GF(256) inner product of equal-length vectors.
func dot(a, b []byte) byte {
	var acc byte
	for i := range a {
		acc = gf256.Add(acc, gf256.Mul(a[i], b[i]))
	}
	return acc
}

// rank computes the rank of a matrix over GF(256) by Gaussian elimination.
// Rows are modified; callers pass copies.
func rank(rows [][]byte) int {
	if len(rows) == 0 {
		return 0
	}
	cols := len(rows[0])
	r := 0
	for c := 0; c < cols && r < len(rows); c++ {
		pivot := -1
		for i := r; i < len(rows); i++ {
			if rows[i][c] != 0 {
				pivot = i
				break
			}
		}
		if pivot == -1 {
			continue
		}
		rows[r], rows[pivot] = rows[pivot], rows[r]
		inv := gf256.Inv(rows[r][c])
		for j := c; j < cols; j++ {
			rows[r][j] = gf256.Mul(rows[r][j], inv)
		}
		for i := range rows {
			if i != r && rows[i][c] != 0 {
				f := rows[i][c]
				for j := c; j < cols; j++ {
					rows[i][j] = gf256.Add(rows[i][j], gf256.Mul(f, rows[r][j]))
				}
			}
		}
		r++
	}
	return r
}

// invert returns the inverse of a square matrix over GF(256), or
// ErrSingular.
func invert(m [][]byte) ([][]byte, error) {
	k := len(m)
	// Augment with the identity.
	aug := make([][]byte, k)
	for i := range aug {
		if len(m[i]) != k {
			return nil, fmt.Errorf("%w: non-square matrix", ErrMalformedShare)
		}
		aug[i] = make([]byte, 2*k)
		copy(aug[i], m[i])
		aug[i][k+i] = 1
	}
	for c := 0; c < k; c++ {
		pivot := -1
		for i := c; i < k; i++ {
			if aug[i][c] != 0 {
				pivot = i
				break
			}
		}
		if pivot == -1 {
			return nil, ErrSingular
		}
		aug[c], aug[pivot] = aug[pivot], aug[c]
		inv := gf256.Inv(aug[c][c])
		for j := 0; j < 2*k; j++ {
			aug[c][j] = gf256.Mul(aug[c][j], inv)
		}
		for i := 0; i < k; i++ {
			if i != c && aug[i][c] != 0 {
				f := aug[i][c]
				for j := 0; j < 2*k; j++ {
					aug[i][j] = gf256.Add(aug[i][j], gf256.Mul(f, aug[c][j]))
				}
			}
		}
	}
	out := make([][]byte, k)
	for i := range out {
		out[i] = aug[i][k:]
	}
	return out, nil
}

// Split is a convenience wrapper drawing randomness from the shared DRBG pool.
//
//remicss:secret secret
func Split(secret []byte, k, m int) ([]Share, error) {
	return NewSplitter(nil).Split(secret, k, m)
}
