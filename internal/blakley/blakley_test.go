package blakley

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func TestSplitCombineRoundtrip(t *testing.T) {
	secret := []byte("hyperplanes through a point")
	for m := 1; m <= 6; m++ {
		for k := 1; k <= m; k++ {
			sp := NewSplitter(rand.New(rand.NewSource(int64(m*10 + k))))
			shares, err := sp.Split(secret, k, m)
			if err != nil {
				t.Fatalf("Split(k=%d, m=%d): %v", k, m, err)
			}
			if len(shares) != m {
				t.Fatalf("got %d shares", len(shares))
			}
			got, err := Combine(shares[:k], k)
			if err != nil {
				t.Fatalf("Combine(k=%d, m=%d): %v", k, m, err)
			}
			if !bytes.Equal(got, secret) {
				t.Errorf("k=%d m=%d: got %q", k, m, got)
			}
		}
	}
}

// TestAnyKSubsetReconstructs exercises the MDS condition: every k-subset of
// shares works, not just the first.
func TestAnyKSubsetReconstructs(t *testing.T) {
	secret := []byte("any subset")
	sp := NewSplitter(rand.New(rand.NewSource(3)))
	const k, m = 3, 6
	shares, err := sp.Split(secret, k, m)
	if err != nil {
		t.Fatal(err)
	}
	idx := []int{0, 0, 0}
	for idx[0] = 0; idx[0] < m; idx[0]++ {
		for idx[1] = idx[0] + 1; idx[1] < m; idx[1]++ {
			for idx[2] = idx[1] + 1; idx[2] < m; idx[2]++ {
				sub := []Share{shares[idx[0]], shares[idx[1]], shares[idx[2]]}
				got, err := Combine(sub, k)
				if err != nil {
					t.Fatalf("subset %v: %v", idx, err)
				}
				if !bytes.Equal(got, secret) {
					t.Fatalf("subset %v reconstructed %q", idx, got)
				}
			}
		}
	}
}

// TestSecrecyStatistical: with k-1 shares, the secret's posterior is
// uniform. We test the concrete mechanism: for fixed k-1 shares, every
// candidate secret byte is consistent with some completion (here we sample:
// reconstruct using a forged k-th hyperplane and verify values spread over
// the field).
func TestSecrecyStatistical(t *testing.T) {
	const trials = 4000
	sp := NewSplitter(rand.New(rand.NewSource(4)))
	counts := make([]int, 256)
	for i := 0; i < trials; i++ {
		shares, err := sp.Split([]byte{0x42}, 2, 2)
		if err != nil {
			t.Fatal(err)
		}
		// Adversary holds share 0 only. Its single constraint a·P = b is
		// one equation in two unknowns; record the share value as the
		// observable.
		counts[shares[0].Values[0]]++
	}
	// Chi-squared uniformity over 256 bins, 99.9th percentile ~ 330.
	expected := float64(trials) / 256
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 330 {
		t.Errorf("share value distribution not uniform: chi2 = %.1f", chi2)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Split([]byte("s"), 0, 2); !errors.Is(err, ErrInvalidParams) {
		t.Error("k=0 accepted")
	}
	if _, err := Split([]byte("s"), 3, 2); !errors.Is(err, ErrInvalidParams) {
		t.Error("k>m accepted")
	}
	if _, err := Split([]byte("s"), 1, MaxShares+1); !errors.Is(err, ErrInvalidParams) {
		t.Error("m>MaxShares accepted")
	}
	if _, err := Split(nil, 1, 1); !errors.Is(err, ErrEmptySecret) {
		t.Error("empty secret accepted")
	}
	if _, err := Combine(nil, 1); !errors.Is(err, ErrTooFewShares) {
		t.Error("no shares accepted")
	}
	if _, err := Combine([]Share{{}}, 0); !errors.Is(err, ErrInvalidParams) {
		t.Error("k=0 combine accepted")
	}
}

func TestCombineRejectsMalformed(t *testing.T) {
	shares, err := NewSplitter(rand.New(rand.NewSource(5))).Split([]byte("ab"), 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	bad := []Share{shares[0], {Coeffs: shares[1].Coeffs[:1], Values: shares[1].Values}}
	if _, err := Combine(bad, 2); !errors.Is(err, ErrMalformedShare) {
		t.Errorf("short coeffs: got %v", err)
	}
	bad = []Share{shares[0], {Coeffs: shares[1].Coeffs, Values: shares[1].Values[:1]}}
	if _, err := Combine(bad, 2); !errors.Is(err, ErrMalformedShare) {
		t.Errorf("short values: got %v", err)
	}
}

func TestCombineSingularDetected(t *testing.T) {
	// Two identical hyperplanes cannot determine the point.
	s := Share{Coeffs: []byte{1, 2}, Values: []byte{7}}
	if _, err := Combine([]Share{s, s}, 2); !errors.Is(err, ErrSingular) {
		t.Errorf("got %v, want ErrSingular", err)
	}
}

func TestShareBytesRoundtrip(t *testing.T) {
	shares, err := NewSplitter(rand.New(rand.NewSource(6))).Split([]byte("wire"), 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range shares {
		parsed, err := ParseShare(s.Bytes(), 3)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(parsed.Coeffs, s.Coeffs) || !bytes.Equal(parsed.Values, s.Values) {
			t.Error("roundtrip mismatch")
		}
	}
	if _, err := ParseShare([]byte{1}, 3); !errors.Is(err, ErrMalformedShare) {
		t.Errorf("short parse: got %v", err)
	}
}

// TestShareOverheadVsShamir documents the historical space disadvantage:
// Blakley shares carry k extra bytes, Shamir's carry one.
func TestShareOverheadVsShamir(t *testing.T) {
	secret := bytes.Repeat([]byte{1}, 100)
	shares, err := NewSplitter(rand.New(rand.NewSource(7))).Split(secret, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(shares[0].Bytes()); got != 100+4 {
		t.Errorf("share size = %d, want %d", got, 104)
	}
}

func TestRankAndInvert(t *testing.T) {
	// Identity has full rank and is its own inverse.
	id := [][]byte{{1, 0}, {0, 1}}
	if got := rank([][]byte{{1, 0}, {0, 1}}); got != 2 {
		t.Errorf("rank(I) = %d", got)
	}
	inv, err := invert(id)
	if err != nil {
		t.Fatal(err)
	}
	if inv[0][0] != 1 || inv[0][1] != 0 || inv[1][0] != 0 || inv[1][1] != 1 {
		t.Errorf("invert(I) = %v", inv)
	}
	// Dependent rows: rank 1, singular.
	if got := rank([][]byte{{2, 4}, {2, 4}}); got != 1 {
		t.Errorf("rank(dependent) = %d", got)
	}
	if _, err := invert([][]byte{{2, 4}, {2, 4}}); !errors.Is(err, ErrSingular) {
		t.Errorf("invert(dependent): got %v", err)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	a, err := NewSplitter(rand.New(rand.NewSource(8))).Split([]byte("det"), 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSplitter(rand.New(rand.NewSource(8))).Split([]byte("det"), 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !bytes.Equal(a[i].Bytes(), b[i].Bytes()) {
			t.Fatalf("share %d differs", i)
		}
	}
}

func BenchmarkBlakleySplit3of5_1400B(b *testing.B) {
	secret := bytes.Repeat([]byte{0x5a}, 1400)
	sp := NewSplitter(rand.New(rand.NewSource(1)))
	b.SetBytes(int64(len(secret)))
	for i := 0; i < b.N; i++ {
		if _, err := sp.Split(secret, 3, 5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBlakleyCombine3of5_1400B(b *testing.B) {
	secret := bytes.Repeat([]byte{0x5a}, 1400)
	shares, err := NewSplitter(rand.New(rand.NewSource(1))).Split(secret, 3, 5)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(secret)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Combine(shares[:3], 3); err != nil {
			b.Fatal(err)
		}
	}
}
