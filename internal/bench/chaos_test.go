package bench

import (
	"reflect"
	"testing"

	"remicss/internal/chaos"
)

// TestChaosSuite replays every builtin scenario and asserts the two
// acceptance gates: delivery stays above the scenario's floor, and no
// scheduled symbol's threshold drops below ⌊κ⌋ (the Theorem 5 secrecy
// floor — degradation sheds multiplicity, never threshold). The trace is
// the ground truth for the threshold check.
func TestChaosSuite(t *testing.T) {
	for _, name := range chaos.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			sc, ok := chaos.Builtin(name)
			if !ok {
				t.Fatalf("builtin %q missing", name)
			}
			res, err := RunChaos(ChaosConfig{Scenario: sc})
			if err != nil {
				t.Fatal(err)
			}
			if res.Offered == 0 {
				t.Fatal("no symbols offered")
			}
			if !res.FloorOK {
				t.Errorf("delivery ratio %.4f below floor %.2f (delivered %d/%d)",
					res.DeliveryRatio, res.Floor, res.Delivered, res.Offered)
			}
			if !res.ThresholdOK {
				t.Errorf("min scheduled threshold %d below ⌊κ⌋ = %d", res.MinThreshold, res.KappaFloor)
			}
			if res.FaultsInjected == 0 {
				t.Error("no fault-injected trace events: the scenario did not run")
			}
		})
	}
}

// TestChaosBlackoutFailsOverAndRecovers checks the blackout scenario's
// specific story: the faulted channel goes Down, probes bring it back, and
// it ends the run Healthy.
func TestChaosBlackoutFailsOverAndRecovers(t *testing.T) {
	sc, _ := chaos.Builtin("blackout")
	res, err := RunChaos(ChaosConfig{Scenario: sc})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failovers == 0 {
		t.Error("blackout produced no Down transition")
	}
	if res.Recoveries == 0 {
		t.Error("channel never recovered to Healthy")
	}
	if res.Probes == 0 {
		t.Error("no probes admitted")
	}
	if got := res.FinalStates[1]; got != "healthy" {
		t.Errorf("channel 1 ended %q, want healthy", got)
	}
}

// TestChaosResolveMode runs the blackout scenario with the LP re-solve
// chooser: the same gates must hold when placement comes from re-solved
// Section IV-B schedules over the surviving subset.
func TestChaosResolveMode(t *testing.T) {
	sc, _ := chaos.Builtin("blackout")
	res, err := RunChaos(ChaosConfig{Scenario: sc, Resolve: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass() {
		t.Errorf("resolve-mode run failed gates: ratio %.4f (floor %.2f), minK %d (⌊κ⌋ %d)",
			res.DeliveryRatio, res.Floor, res.MinThreshold, res.KappaFloor)
	}
}

// TestChaosDeterministic replays the multi scenario twice and requires
// bit-identical reports: same seed, same fault timeline, same schedule,
// same degradation.
func TestChaosDeterministic(t *testing.T) {
	run := func() ChaosResult {
		sc, _ := chaos.Builtin("multi")
		res, err := RunChaos(ChaosConfig{Scenario: sc})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("chaos run not deterministic:\n%+v\n%+v", a, b)
	}
}
