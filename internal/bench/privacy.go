package bench

import (
	"math"

	"remicss/internal/chaos"
	"remicss/internal/core"
	"remicss/internal/leakage"
	"remicss/internal/obs"
)

// PrivacyConfig asks RunChaos to score the run's realized schedule under
// the correlated-adversary model and the statistical leakage meter, next to
// the delivery and threshold gates.
type PrivacyConfig struct {
	// Groups are the shared-risk groups as channel bitmasks. Empty derives
	// them from the scenario's overlapping blackout windows via
	// chaos.SharedGroups — the scripted faults reveal which channels share
	// a conduit.
	Groups []uint32
	// Rho is the common-cause correlation factor applied to every group,
	// for both eavesdropping and loss. 0 selects DefaultPrivacyRho.
	Rho float64
	// Leakage parameterizes the adversary-advantage bound (field width,
	// per-share partial leakage λ, and the advantage budget that arms the
	// privacy-alert gate).
	Leakage leakage.Config
}

// DefaultPrivacyRho is the correlation factor assumed for derived
// shared-risk groups when PrivacyConfig.Rho is zero: a strong but not total
// common cause, matching the worked example in DESIGN §15.
const DefaultPrivacyRho = 0.8

// PrivacyReport is the privacy-impact verdict of one chaos run: the
// realized schedule's exposure under the independence assumption, under the
// correlated model, and the leakage-aware advantage bound.
type PrivacyReport struct {
	// Groups are the shared-risk groups that were scored (bitmasks) and
	// Rho the common-cause factor applied to them.
	Groups []uint32 `json:"groups"`
	Rho    float64  `json:"rho"`
	// SymbolsScored counts scheduled symbols folded into the verdict.
	SymbolsScored int64 `json:"symbols_scored"`
	// MeanIndependentExposure and MeanCorrelatedExposure are the realized
	// schedule's mean per-symbol exposure P(adversary observes >= k
	// shares) under the paper's independence assumption and under the
	// correlated model. MaxIndependentExposure and MaxCorrelatedExposure
	// are the per-symbol maxima — the weakest symbol the schedule sent.
	MeanIndependentExposure float64 `json:"mean_independent_exposure"`
	MeanCorrelatedExposure  float64 `json:"mean_correlated_exposure"`
	MaxIndependentExposure  float64 `json:"max_independent_exposure"`
	MaxCorrelatedExposure   float64 `json:"max_correlated_exposure"`
	// MaxGroupExposure is the largest schedule-weighted common-cause
	// exposure attributable to any single group.
	MaxGroupExposure float64 `json:"max_group_exposure"`
	// LeakageBound is the maximum per-symbol adversary-advantage bound ε
	// under the correlated model and the configured partial-share leakage.
	LeakageBound float64 `json:"leakage_bound"`
	// Alerts counts symbols whose advantage bound exceeded the leakage
	// budget; BudgetOK is the gate (vacuously true with no budget).
	Alerts   int64 `json:"alerts"`
	BudgetOK bool  `json:"budget_ok"`
}

// scorePrivacy builds the correlated model for the run and scores every
// scheduled (k, M) assignment the chooser committed, feeding the leakage
// meter so the remicss_privacy_* series carry the verdict. counts is the
// realized schedule: how many symbols were sent with each assignment.
// share-exposure counts per channel come from the trace's share-sent
// events restricted to grouped channels — the correlated adversary's
// observation opportunities.
func scorePrivacy(cfg ChaosConfig, set core.Set, counts map[core.Assignment]int64, trace *obs.Trace) (*PrivacyReport, error) {
	pc := *cfg.Privacy
	if len(pc.Groups) == 0 {
		pc.Groups = chaos.SharedGroups(cfg.Scenario, set.N())
	}
	if pc.Rho == 0 {
		pc.Rho = DefaultPrivacyRho
	}
	corr := core.Correlation{}
	var groupedMask uint32
	for _, m := range pc.Groups {
		corr.Groups = append(corr.Groups, core.RiskGroup{Mask: m, RiskRho: pc.Rho, LossRho: pc.Rho})
		groupedMask |= m
	}
	if err := corr.Validate(set.N()); err != nil {
		return nil, err
	}

	meter := leakage.NewMeter(pc.Leakage, set.N(), cfg.Obs, trace)
	rep := &PrivacyReport{Groups: pc.Groups, Rho: pc.Rho}

	var sumInd, sumCorr float64
	for a, n := range counts {
		if n <= 0 {
			continue
		}
		ind := set.SubsetRisk(a.K, a.Mask)
		pmf := set.CorrelatedObservedPMF(corr, a.Mask)
		var sc leakage.Score
		for i := int64(0); i < n; i++ {
			sc = meter.RecordSymbolPMF(0, 0, a.K, pmf)
		}
		rep.SymbolsScored += n
		sumInd += ind * float64(n)
		sumCorr += sc.Exposure * float64(n)
		rep.MaxIndependentExposure = math.Max(rep.MaxIndependentExposure, ind)
		rep.MaxCorrelatedExposure = math.Max(rep.MaxCorrelatedExposure, sc.Exposure)
	}
	if rep.SymbolsScored > 0 {
		rep.MeanIndependentExposure = sumInd / float64(rep.SymbolsScored)
		rep.MeanCorrelatedExposure = sumCorr / float64(rep.SymbolsScored)
	}

	// Group attribution over the realized (empirical) schedule.
	if rep.SymbolsScored > 0 {
		sched := make(core.Schedule, len(counts))
		for a, n := range counts {
			sched[a] = float64(n) / float64(rep.SymbolsScored)
		}
		for g := range corr.Groups {
			rep.MaxGroupExposure = math.Max(rep.MaxGroupExposure, sched.GroupExposure(set, corr, g))
		}
	}

	// Feed the receiver/obs share-exposure counts: every share the sender
	// put on a conduit-shared channel was an observation opportunity for
	// the correlated adversary.
	for _, ev := range trace.Snapshot(nil) {
		if ev.Kind == obs.EventShareSent && ev.Channel >= 0 &&
			groupedMask&(1<<uint(ev.Channel)) != 0 {
			meter.RecordObserved(int(ev.Channel), 1)
		}
	}

	st := meter.Snapshot()
	rep.LeakageBound = st.MaxAdvantage
	rep.Alerts = st.Alerts
	rep.BudgetOK = pc.Leakage.Budget == 0 || st.MaxAdvantage <= pc.Leakage.Budget
	return rep, nil
}
