package bench

import (
	"math"
	"testing"
	"time"
)

func TestSetupDefinitions(t *testing.T) {
	d := Diverse()
	if d.N() != 5 {
		t.Fatalf("diverse N = %d", d.N())
	}
	if d.TotalMbps() != 250 {
		t.Errorf("diverse total = %v, want 250", d.TotalMbps())
	}
	l := Lossy()
	if l.Loss[4] != 0.03 {
		t.Errorf("lossy channel 5 loss = %v, want 0.03", l.Loss[4])
	}
	dd := Delayed()
	if dd.Delay[2] != 12500*time.Microsecond {
		t.Errorf("delayed channel 3 delay = %v", dd.Delay[2])
	}
	id := Identical(300)
	for i := 0; i < 5; i++ {
		if id.RateMbps[i] != 300 {
			t.Errorf("identical rate[%d] = %v", i, id.RateMbps[i])
		}
	}
}

func TestUnitConversionRoundtrip(t *testing.T) {
	pps := PacketsPerSecond(100, 1400)
	if math.Abs(pps-8928.57) > 0.01 {
		t.Errorf("100 Mbps at 1400B = %v pps", pps)
	}
	if got := Mbps(pps, 1400); math.Abs(got-100) > 1e-9 {
		t.Errorf("roundtrip = %v Mbps", got)
	}
}

func TestChannelSetMatchesSetup(t *testing.T) {
	set := Lossy().ChannelSet(1400)
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	if set[0].Loss != 0.01 || set[4].Loss != 0.03 {
		t.Errorf("losses not carried over: %v", set.Losses())
	}
	if math.Abs(set[4].Rate-PacketsPerSecond(100, 1400)) > 1e-9 {
		t.Errorf("rate not converted: %v", set[4].Rate)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(RunConfig{Setup: Diverse(), Kappa: 0, Mu: 1, OfferedMbps: 10, Duration: time.Second}); err == nil {
		t.Error("kappa=0 accepted")
	}
	if _, err := Run(RunConfig{Setup: Diverse(), Kappa: 1, Mu: 2, Duration: time.Second}); err == nil {
		t.Error("no offered load accepted")
	}
	if _, err := Run(RunConfig{Setup: Diverse(), Kappa: 1, Mu: 2, OfferedMbps: 10}); err == nil {
		t.Error("no duration accepted")
	}
	if _, err := Run(RunConfig{Setup: Diverse(), Kappa: 1, Mu: 2, OfferedMbps: 10, Duration: time.Second, Chooser: ChooserKind(99)}); err == nil {
		t.Error("unknown chooser accepted")
	}
}

// TestRateNearOptimalIdentical checks the paper's Section VI-A headline for
// the Identical setup: achieved rate within a few percent of R_C.
func TestRateNearOptimalIdentical(t *testing.T) {
	setup := Identical(100)
	set := setup.ChannelSet(DefaultPayloadBytes)
	for _, km := range [][2]float64{{1, 1}, {1, 3.5}, {2, 2.8}, {3, 4.2}, {5, 5}} {
		kappa, mu := km[0], km[1]
		rc, err := set.OptimalRate(mu)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(RunConfig{
			Setup:       setup,
			Kappa:       kappa,
			Mu:          mu,
			OfferedMbps: 1000,
			Duration:    2 * time.Second,
			Seed:        42,
		})
		if err != nil {
			t.Fatal(err)
		}
		optimal := Mbps(rc, DefaultPayloadBytes)
		gap := (optimal - res.AchievedMbps) / optimal
		if gap > 0.06 || gap < -0.01 {
			t.Errorf("identical κ=%v μ=%v: achieved %.1f vs optimal %.1f Mbps (gap %.1f%%)",
				kappa, mu, res.AchievedMbps, optimal, gap*100)
		}
	}
}

// TestRateNearOptimalDiverse is the Diverse-setup counterpart.
func TestRateNearOptimalDiverse(t *testing.T) {
	setup := Diverse()
	set := setup.ChannelSet(DefaultPayloadBytes)
	for _, km := range [][2]float64{{1, 1}, {1, 2.5}, {2, 3}, {3, 4}, {5, 5}} {
		kappa, mu := km[0], km[1]
		rc, err := set.OptimalRate(mu)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(RunConfig{
			Setup:       setup,
			Kappa:       kappa,
			Mu:          mu,
			OfferedMbps: 1000,
			Duration:    2 * time.Second,
			Seed:        43,
		})
		if err != nil {
			t.Fatal(err)
		}
		optimal := Mbps(rc, DefaultPayloadBytes)
		gap := (optimal - res.AchievedMbps) / optimal
		if gap > 0.08 || gap < -0.01 {
			t.Errorf("diverse κ=%v μ=%v: achieved %.1f vs optimal %.1f Mbps (gap %.1f%%)",
				kappa, mu, res.AchievedMbps, optimal, gap*100)
		}
	}
}

func TestLossMatchesModelOnLossySetup(t *testing.T) {
	// κ=1, μ=5: model loss is Π l_i ~ 3e-11, so measured loss should be ~0.
	// At μ=5 every symbol needs a share on the 5 Mbps channel, so R_C is
	// only 5 Mbps; offer below that to keep stalls out of the measurement.
	res, err := Run(RunConfig{
		Setup:       Lossy(),
		Kappa:       1,
		Mu:          5,
		OfferedMbps: 4,
		Duration:    2 * time.Second,
		Seed:        44,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LossFraction > 0.01 {
		t.Errorf("κ=1 μ=5 loss = %v, want ~0", res.LossFraction)
	}
	// κ=μ=5: every share must arrive; per-symbol loss is
	// 1 - Π(1-l_i) ≈ 0.0736.
	res, err = Run(RunConfig{
		Setup:       Lossy(),
		Kappa:       5,
		Mu:          5,
		OfferedMbps: 4,
		Duration:    2 * time.Second,
		Seed:        45,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - (1-0.01)*(1-0.005)*(1-0.01)*(1-0.02)*(1-0.03)
	if math.Abs(res.LossFraction-want) > 0.02 {
		t.Errorf("κ=μ=5 loss = %v, want ~%v", res.LossFraction, want)
	}
}

func TestDelayReflectsKthSmallest(t *testing.T) {
	// Low offered load on the Delayed setup: delay should approach the
	// model's subset delay rather than queueing.
	set := Delayed().ChannelSet(DefaultPayloadBytes)
	res, err := Run(RunConfig{
		Setup:       Delayed(),
		Kappa:       5,
		Mu:          5,
		OfferedMbps: 5,
		Duration:    2 * time.Second,
		Seed:        46,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := set.SubsetDelay(5, set.FullMask()) // 12.5ms, the max delay
	got := res.MeanDelay.Seconds()
	if got < want || got > want+0.01 {
		t.Errorf("κ=μ=5 delay = %vs, want >= %vs (plus serialization)", got, want)
	}
}

func TestStripingChooserRun(t *testing.T) {
	setup := Diverse()
	res, err := Run(RunConfig{
		Setup:       setup,
		Chooser:     ChooserStriping,
		OfferedMbps: 1000,
		Duration:    2 * time.Second,
		Seed:        47,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.AchievedMbps-250)/250 > 0.05 {
		t.Errorf("striping achieved %v Mbps, want ~250", res.AchievedMbps)
	}
}

func TestStaticMaxRateChooserRun(t *testing.T) {
	// Offer exactly R_C (75 Mbps at μ=3): the static schedule is designed
	// for that operating point; saturating it instead just overflows queues.
	res, err := Run(RunConfig{
		Setup:       Diverse(),
		Kappa:       2,
		Mu:          3,
		Chooser:     ChooserStaticMaxRate,
		OfferedMbps: 75,
		Duration:    2 * time.Second,
		Seed:        48,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AchievedMbps < 55 {
		t.Errorf("static schedule achieved %v Mbps, want near 75", res.AchievedMbps)
	}
}

func TestHostCostCapsThroughput(t *testing.T) {
	// With channels far faster than the host, throughput is host-limited:
	// ~1/(Base+PerK) symbols/s at κ=μ=1.
	res, err := Run(RunConfig{
		Setup:       Identical(800),
		Kappa:       1,
		Mu:          1,
		OfferedMbps: 5000,
		Duration:    time.Second,
		Seed:        49,
		HostCost:    DefaultHostCost,
	})
	if err != nil {
		t.Fatal(err)
	}
	capSymbols := float64(time.Second) / float64(DefaultHostCost.Base+DefaultHostCost.PerK)
	capMbps := Mbps(capSymbols, DefaultPayloadBytes)
	if math.Abs(res.AchievedMbps-capMbps)/capMbps > 0.1 {
		t.Errorf("host-limited rate %v Mbps, want ~%v", res.AchievedMbps, capMbps)
	}
}

func TestFig2PackingShape(t *testing.T) {
	packings, err := Fig2Packing()
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]int{1: 15, 2: 7, 3: 3}
	for m, count := range want {
		if got := len(packings[m]); got != count {
			t.Errorf("m=%d: %d symbols, want %d", m, got, count)
		}
	}
	rendered := RenderFig2([]int{3, 4, 8}, packings[2])
	if len(rendered) == 0 {
		t.Error("empty rendering")
	}
}

func TestMuSweepBounds(t *testing.T) {
	sweep := muSweep(1, 5, 0.1)
	if sweep[0] != 1 {
		t.Errorf("sweep starts at %v", sweep[0])
	}
	last := sweep[len(sweep)-1]
	if last != 5 {
		t.Errorf("sweep ends at %v", last)
	}
	for _, mu := range sweep {
		if mu < 1 || mu > 5 {
			t.Errorf("sweep value %v out of range", mu)
		}
	}
	// κ=5 sweep is the single point 5.
	if s := muSweep(5, 5, 0.1); len(s) != 1 || s[0] != 5 {
		t.Errorf("κ=5 sweep = %v", s)
	}
}

// TestFig3SmokeFast runs a coarse Fig3 sweep end to end.
func TestFig3SmokeFast(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	points, err := Fig3(Identical(100), FigureConfig{
		Duration: 500 * time.Millisecond,
		MuStep:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 5+4+3+2+1 {
		t.Fatalf("got %d points", len(points))
	}
	for _, p := range points {
		if p.OptimalMbps <= 0 {
			t.Errorf("point κ=%v μ=%v has no optimal", p.Kappa, p.Mu)
		}
		gap := (p.OptimalMbps - p.ActualMbps) / p.OptimalMbps
		if gap > 0.15 {
			t.Errorf("κ=%v μ=%v: gap %.1f%% too wide even for a short run", p.Kappa, p.Mu, gap*100)
		}
	}
}

// TestFig4And5Smoke exercises the two-phase max-rate measurement on single
// points.
func TestFig4And5Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	fc := FigureConfig{Duration: 500 * time.Millisecond, MuStep: 2}
	delayPoints, err := Fig4(fc)
	if err != nil {
		t.Fatal(err)
	}
	if len(delayPoints) == 0 {
		t.Fatal("no delay points")
	}
	for _, p := range delayPoints {
		if p.OptimalMs <= 0 {
			t.Errorf("κ=%v μ=%v: optimal delay %v", p.Kappa, p.Mu, p.OptimalMs)
		}
		if p.ActualMs < p.OptimalMs*0.5 {
			t.Errorf("κ=%v μ=%v: actual %vms below optimal %vms", p.Kappa, p.Mu, p.ActualMs, p.OptimalMs)
		}
	}
	lossPoints, err := Fig5(fc)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range lossPoints {
		if p.OptimalLoss < 0 || p.OptimalLoss > 1 {
			t.Errorf("optimal loss %v out of range", p.OptimalLoss)
		}
		if p.ActualLoss < 0 || p.ActualLoss > 1 {
			t.Errorf("actual loss %v out of range", p.ActualLoss)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	cfg := RunConfig{
		Setup:       Lossy(),
		Kappa:       2,
		Mu:          3,
		OfferedMbps: 100,
		Duration:    time.Second,
		Seed:        50,
	}
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.AchievedSymbolRate != r2.AchievedSymbolRate || r1.LossFraction != r2.LossFraction ||
		r1.MeanDelay != r2.MeanDelay {
		t.Errorf("runs diverged: %+v vs %+v", r1, r2)
	}
}

// TestFig6ShapeCeiling is the regression for the paper's Section VI-C
// observation: achieved rate follows optimal while channel-limited, then
// levels off flat near 750 Mbps aggregate under the host cost model.
func TestFig6ShapeCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	run := func(mbps float64) float64 {
		setup := Identical(mbps)
		res, err := Run(RunConfig{
			Setup:       setup,
			Kappa:       1,
			Mu:          1,
			OfferedMbps: setup.TotalMbps() * 1.25,
			Duration:    time.Second,
			Seed:        1,
			HostCost:    DefaultHostCost,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.AchievedMbps
	}
	// Channel-limited region: 100 Mbps/channel achieves ~500 aggregate.
	if got := run(100); math.Abs(got-500)/500 > 0.02 {
		t.Errorf("at 100 Mbps/channel achieved %v, want ~500", got)
	}
	// Host-limited region: flat ceiling independent of channel rate.
	at400, at800 := run(400), run(800)
	if math.Abs(at400-at800) > 10 {
		t.Errorf("ceiling not flat: %v at 400 vs %v at 800", at400, at800)
	}
	if at800 < 700 || at800 > 790 {
		t.Errorf("ceiling %v outside the ~750 Mbps band", at800)
	}
}

// TestFig7KappaOrdering: at μ=5 under the host model, larger κ must yield a
// strictly lower ceiling (the O(k) split cost).
func TestFig7KappaOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	prev := math.Inf(1)
	for kappa := 1.0; kappa <= 5; kappa++ {
		setup := Identical(800)
		res, err := Run(RunConfig{
			Setup:       setup,
			Kappa:       kappa,
			Mu:          5,
			OfferedMbps: setup.TotalMbps() / 5 * 1.25,
			Duration:    time.Second,
			Seed:        1,
			HostCost:    DefaultHostCost,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.AchievedMbps >= prev {
			t.Errorf("κ=%v ceiling %v not below κ=%v ceiling %v",
				kappa, res.AchievedMbps, kappa-1, prev)
		}
		prev = res.AchievedMbps
	}
}
