package bench

import (
	"testing"
	"time"
)

func TestRunAdaptiveRecovery(t *testing.T) {
	epochs, err := RunAdaptive(AdaptiveConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) < 10 {
		t.Fatalf("only %d epochs", len(epochs))
	}
	// Before the burst (default 4s): loss ~0, mu at the floor.
	var preBurst, postBurst, final *AdaptiveEpoch
	for i := range epochs {
		e := &epochs[i]
		switch {
		case e.At <= 4*time.Second:
			preBurst = e
		case postBurst == nil && e.At > 5*time.Second:
			postBurst = e
		}
	}
	final = &epochs[len(epochs)-1]
	if preBurst == nil || postBurst == nil {
		t.Fatal("missing epochs around the burst")
	}
	if preBurst.Loss > 0.01 {
		t.Errorf("pre-burst loss = %v", preBurst.Loss)
	}
	if preBurst.Mu != 2 {
		t.Errorf("pre-burst mu = %v, want floor 2", preBurst.Mu)
	}
	// After the burst the controller must have raised μ...
	if final.Mu <= preBurst.Mu {
		t.Errorf("final mu = %v, want above %v", final.Mu, preBurst.Mu)
	}
	// ...and the last epoch's loss must be back near the target.
	if final.Loss > 0.05 {
		t.Errorf("final loss = %v; controller did not recover", final.Loss)
	}
}

func TestRunAdaptiveDeterministic(t *testing.T) {
	a, err := RunAdaptive(AdaptiveConfig{Seed: 4, Duration: 6 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunAdaptive(AdaptiveConfig{Seed: 4, Duration: 6 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("epoch counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("epoch %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
