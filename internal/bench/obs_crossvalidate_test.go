package bench

import (
	"fmt"
	"testing"
	"time"

	"remicss/internal/obs"
)

// gatherIndex splits a registry snapshot into label-summed counter totals,
// per-channel and per-shard counter values, and named histograms, for
// reconciliation.
type gatherIndex struct {
	totals  map[string]int64            // counters and gauges, summed over labels
	byChan  map[string]map[string]int64 // name -> channel label -> value
	byShard map[string]map[string]int64 // name -> shard label -> value
	hists   map[string]*obs.HistogramSnapshot
	pending int64
}

func indexRegistry(reg *obs.Registry) gatherIndex {
	idx := gatherIndex{
		totals:  make(map[string]int64),
		byChan:  make(map[string]map[string]int64),
		byShard: make(map[string]map[string]int64),
		hists:   make(map[string]*obs.HistogramSnapshot),
	}
	for _, s := range reg.Gather() {
		if s.Hist != nil {
			idx.hists[s.Name] = s.Hist
			continue
		}
		idx.totals[s.Name] += s.Value
		if s.Name == "remicss_receiver_pending" {
			idx.pending = s.Value
		}
		for _, l := range s.Labels {
			var m map[string]map[string]int64
			switch l.Key {
			case "channel":
				m = idx.byChan
			case "shard":
				m = idx.byShard
			default:
				continue
			}
			inner := m[s.Name]
			if inner == nil {
				inner = make(map[string]int64)
				m[s.Name] = inner
			}
			inner[l.Value] = s.Value
		}
	}
	return idx
}

// TestObsCrossValidation runs the full protocol over the emulator with
// observability enabled and reconciles three independent views of the same
// run: the obs registry, the legacy Stats() snapshots, and the netem
// emulator's ground-truth link counters. Every datagram must be accounted
// for exactly — the emulator is single-threaded virtual time, so there is
// no tolerance anywhere.
func TestObsCrossValidation(t *testing.T) {
	for _, tc := range []struct {
		name     string
		setup    Setup
		wantLoss bool
	}{
		{"identical", Identical(20), false},
		{"lossy", Lossy(), true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			reg := obs.NewRegistry()
			trace := obs.NewTrace(1 << 15)
			const shards = 8 // pinned: per-shard accounting must reconcile on any host
			res, err := Run(RunConfig{
				Setup:       tc.setup,
				Kappa:       1,
				Mu:          2,
				OfferedMbps: 20,
				Duration:    150 * time.Millisecond,
				Seed:        42,
				Shards:      shards,
				Obs:         reg,
				Trace:       trace,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Receiver.SymbolsDelivered == 0 {
				t.Fatal("run delivered nothing; cross-validation is vacuous")
			}
			idx := indexRegistry(reg)

			// View 1 vs view 2: every obs counter must equal the legacy
			// Stats() field it shadows.
			for _, c := range []struct {
				metric string
				want   int64
			}{
				{"remicss_sender_symbols_sent_total", res.Sender.SymbolsSent},
				{"remicss_sender_symbols_stalled_total", res.Sender.SymbolsStalled},
				{"remicss_sender_shares_sent_total", res.Sender.SharesSent},
				{"remicss_sender_shares_dropped_total", res.Sender.SharesDropped},
				{"remicss_receiver_shares_received_total", res.Receiver.SharesReceived},
				{"remicss_receiver_shares_invalid_total", res.Receiver.SharesInvalid},
				{"remicss_receiver_shares_duplicate_total", res.Receiver.SharesDuplicate},
				{"remicss_receiver_shares_late_total", res.Receiver.SharesLate},
				{"remicss_receiver_symbols_delivered_total", res.Receiver.SymbolsDelivered},
				{"remicss_receiver_symbols_evicted_total", res.Receiver.SymbolsEvicted},
				{"remicss_receiver_combine_failures_total", res.Receiver.CombineFailures},
			} {
				if got := idx.totals[c.metric]; got != c.want {
					t.Errorf("%s = %d, legacy stats say %d", c.metric, got, c.want)
				}
			}

			// View 1 vs view 3: per-channel netem obs counters must equal the
			// emulator's own LinkStats, channel by channel.
			var sent, dropped, lost, deliveredDg int64
			for i, ls := range res.Links {
				ch := fmt.Sprint(i)
				for _, c := range []struct {
					metric string
					want   int64
				}{
					{"netem_link_sent_total", ls.Sent},
					{"netem_link_dropped_total", ls.Dropped},
					{"netem_link_lost_total", ls.Lost},
					{"netem_link_delivered_total", ls.Delivered},
				} {
					if got := idx.byChan[c.metric][ch]; got != c.want {
						t.Errorf("channel %d: %s = %d, emulator says %d", i, c.metric, got, c.want)
					}
				}
				// Conservation per link: the run drains in-flight traffic, so
				// everything accepted was either delivered or lost.
				if ls.Sent != ls.Delivered+ls.Lost {
					t.Errorf("channel %d: sent %d != delivered %d + lost %d", i, ls.Sent, ls.Delivered, ls.Lost)
				}
				sent += ls.Sent
				dropped += ls.Dropped
				lost += ls.Lost
				deliveredDg += ls.Delivered
			}

			// Cross-layer conservation: shares the sender counted as accepted
			// are exactly the packets the links accepted, and every datagram
			// the emulator delivered was classified by the receiver.
			if sent != res.Sender.SharesSent {
				t.Errorf("links accepted %d packets, sender counted %d shares sent", sent, res.Sender.SharesSent)
			}
			if dropped != res.Sender.SharesDropped {
				t.Errorf("links rejected %d packets, sender counted %d drops", dropped, res.Sender.SharesDropped)
			}
			datagrams := idx.totals["remicss_receiver_datagrams_total"]
			if deliveredDg != datagrams {
				t.Errorf("links delivered %d datagrams, receiver saw %d", deliveredDg, datagrams)
			}
			classified := res.Receiver.SharesReceived + res.Receiver.SharesInvalid +
				res.Receiver.SharesDuplicate + res.Receiver.SharesLate
			if classified != datagrams {
				t.Errorf("receiver classified %d shares out of %d datagrams", classified, datagrams)
			}
			if res.Sender.SharesSent-lost != datagrams {
				t.Errorf("sent %d - lost %d != received %d", res.Sender.SharesSent, lost, datagrams)
			}
			if tc.wantLoss && lost == 0 {
				t.Error("lossy setup lost nothing; ground truth is not exercising the loss path")
			}
			if !tc.wantLoss && lost != 0 {
				t.Errorf("loss-free setup lost %d packets", lost)
			}

			// Delay histogram: one observation per delivery, and its total
			// mass must match the trace's per-delivery delay values exactly.
			hist := idx.hists["remicss_receiver_symbol_delay_ns"]
			if hist == nil {
				t.Fatal("remicss_receiver_symbol_delay_ns not registered")
			}
			if hist.Count != res.Receiver.SymbolsDelivered {
				t.Errorf("delay histogram holds %d observations, %d symbols delivered", hist.Count, res.Receiver.SymbolsDelivered)
			}

			// Trace vs counters: the ring is sized to never wrap at this
			// load, so per-kind event counts equal the counters and the sum
			// of traced delivery delays equals the histogram's sum.
			if trace.Recorded() > uint64(trace.Cap()) {
				t.Fatalf("trace wrapped (%d events, capacity %d); enlarge it", trace.Recorded(), trace.Cap())
			}
			if got := trace.CountKind(obs.EventShareSent); int64(got) != res.Sender.SharesSent {
				t.Errorf("traced %d share-sent events, counters say %d", got, res.Sender.SharesSent)
			}
			if got := trace.CountKind(obs.EventDatagramLost); int64(got) != lost {
				t.Errorf("traced %d datagram losses, emulator says %d", got, lost)
			}
			var deliveries int
			var delaySum int64
			for _, ev := range trace.Snapshot(nil) {
				if ev.Kind == obs.EventSymbolDelivered {
					deliveries++
					delaySum += ev.Value
					if ev.Value < 0 {
						t.Errorf("negative traced delivery delay %d", ev.Value)
					}
				}
			}
			if int64(deliveries) != res.Receiver.SymbolsDelivered {
				t.Errorf("traced %d deliveries, stats say %d", deliveries, res.Receiver.SymbolsDelivered)
			}
			if delaySum != hist.Sum {
				t.Errorf("traced delay sum %d != histogram sum %d", delaySum, hist.Sum)
			}

			// Pending gauge: at κ=1 every delivered symbol leaves exactly one
			// tombstone, nothing is ever incomplete, and the run is far below
			// MaxPending — so the gauge must equal the delivery count.
			if idx.pending != res.Receiver.SymbolsDelivered {
				t.Errorf("pending gauge %d, want %d tombstones", idx.pending, res.Receiver.SymbolsDelivered)
			}

			// Per-shard series vs aggregates: the sharded receiver maintains
			// the unlabeled series by the exact same admissions and drops
			// that move the shard series, so the shard sums must reconcile
			// with no tolerance.
			shardPending := idx.byShard["remicss_receiver_shard_pending"]
			if len(shardPending) != shards {
				t.Fatalf("%d shard pending series, want %d", len(shardPending), shards)
			}
			var pendingSum int64
			for _, v := range shardPending {
				pendingSum += v
			}
			if pendingSum != idx.pending {
				t.Errorf("shard pending sum %d != aggregate pending gauge %d", pendingSum, idx.pending)
			}
			shardEvictions := idx.byShard["remicss_receiver_shard_evictions_total"]
			if len(shardEvictions) != shards {
				t.Fatalf("%d shard eviction series, want %d", len(shardEvictions), shards)
			}
			var evictionSum int64
			for _, v := range shardEvictions {
				evictionSum += v
			}
			if evictionSum != res.Receiver.SymbolsEvicted {
				t.Errorf("shard eviction sum %d != symbols evicted %d", evictionSum, res.Receiver.SymbolsEvicted)
			}
		})
	}
}
