package bench

import "testing"

func TestCompareLimitedPenalties(t *testing.T) {
	rows, err := CompareLimited(FigureConfig{MuStep: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	anyDelayPenalty := false
	for _, r := range rows {
		// The limited family is a subset: its optimum can never be better.
		if r.LimitedRisk < r.UnlimitedRisk-1e-9 {
			t.Errorf("κ=%v μ=%v: limited risk %v better than unlimited %v",
				r.Kappa, r.Mu, r.LimitedRisk, r.UnlimitedRisk)
		}
		if r.LimitedDelayMs < r.UnlimitedDelayMs-1e-6 {
			t.Errorf("κ=%v μ=%v: limited delay %v better than unlimited %v",
				r.Kappa, r.Mu, r.LimitedDelayMs, r.UnlimitedDelayMs)
		}
		if r.LimitedDelayMs > r.UnlimitedDelayMs+1e-3 {
			anyDelayPenalty = true
		}
		// At integral parameters the families coincide on the boundary
		// entries, so integral κ=μ must show zero penalty.
		if r.Kappa == r.Mu {
			if r.LimitedRisk != r.UnlimitedRisk {
				t.Errorf("κ=μ=%v: risk penalty %v at a point with one schedule",
					r.Kappa, r.LimitedRisk-r.UnlimitedRisk)
			}
		}
	}
	// Section IV-E promises real penalties exist somewhere in the space.
	if !anyDelayPenalty {
		t.Error("no delay penalty anywhere; Section IV-E effect not visible")
	}
}
