package bench

import (
	"fmt"
	"math/bits"
	"math/rand"
	"time"

	"remicss/internal/core"
	"remicss/internal/netem"
	"remicss/internal/obs"
	"remicss/internal/remicss"
	"remicss/internal/schedule"
	"remicss/internal/sharing"
	"remicss/internal/striping"
)

// ChooserKind selects the sender's scheduling strategy for a run.
type ChooserKind int

// Available strategies.
const (
	// ChooserDynamic is the reference protocol's dynamic share schedule
	// (first m ready channels), the paper's implementation.
	ChooserDynamic ChooserKind = iota
	// ChooserStaticMaxRate samples from the Section IV-D LP schedule
	// (optimal loss at max rate), the ablation against the dynamic
	// approach.
	ChooserStaticMaxRate
	// ChooserStriping is the κ=μ=1 MPTCP-style deterministic striper; it
	// ignores Kappa/Mu.
	ChooserStriping
)

// HostCostModel charges sender CPU time per share, the bottleneck the
// paper's high-bandwidth experiment (Section VI-C) runs into around
// 750 Mbps aggregate. Splitting cost grows with the threshold k (polynomial
// evaluation is O(k) per byte), which is why large κ falls short of optimal
// sooner in Figure 7.
type HostCostModel struct {
	// Base is the fixed per-share cost (encoding, syscall analog).
	Base time.Duration
	// PerK is the additional per-share cost per unit of threshold.
	PerK time.Duration
}

// DefaultHostCost is calibrated so five identical channels saturate near
// 750 Mbps aggregate at κ = μ = 1 with 1400-byte symbols, matching the
// leveling-off point the paper reports.
var DefaultHostCost = HostCostModel{Base: 12 * time.Microsecond, PerK: 3 * time.Microsecond}

func (h HostCostModel) enabled() bool { return h.Base > 0 || h.PerK > 0 }

// perSymbol returns the host time consumed by one symbol with threshold k
// and multiplicity m.
func (h HostCostModel) perSymbol(k, m int) time.Duration {
	return time.Duration(m) * (h.Base + time.Duration(k)*h.PerK)
}

// hostSlack is how far the host's work backlog may extend past the current
// instant before offered symbols are refused. A real sender queues briefly
// (socket buffers, scheduler run queue) instead of dropping the instant the
// CPU is busy; without this allowance the deterministic offer ticks alias
// against the service time and carve a sawtooth into the host-limited
// region.
const hostSlack = 200 * time.Microsecond

// RunConfig parameterizes one measurement run.
type RunConfig struct {
	// Setup is the network configuration.
	Setup Setup
	// Kappa and Mu are the protocol parameters (ignored by
	// ChooserStriping).
	Kappa, Mu float64
	// OfferedMbps is the iperf-style offered load.
	OfferedMbps float64
	// Duration is the measurement window in virtual time.
	Duration time.Duration
	// Seed makes the run reproducible.
	Seed int64
	// Chooser selects the scheduling strategy. Default ChooserDynamic.
	Chooser ChooserKind
	// IndexOrderChooser reverts the dynamic chooser to naive index-order
	// channel selection (ablation; see remicss.IndexOrder).
	IndexOrderChooser bool
	// HostCost enables the sender CPU bottleneck model; zero disables it.
	HostCost HostCostModel
	// PayloadBytes is the symbol size. Defaults to DefaultPayloadBytes.
	PayloadBytes int
	// QueueLimit is the per-link transmit queue depth. Defaults to
	// netem.DefaultQueueLimit.
	QueueLimit int
	// ReassemblyTimeout overrides the receiver eviction timeout. Defaults
	// to 500ms, comfortably above every setup's delays.
	ReassemblyTimeout time.Duration
	// Shards overrides the receiver's reassembly shard count (see
	// remicss.ReceiverConfig.Shards). 0 keeps the GOMAXPROCS default; the
	// cross-validation tests pin it so per-shard accounting is exercised
	// identically on any host.
	Shards int
	// Obs, when non-nil, receives every metric series the run produces:
	// protocol counters/histograms plus per-channel netem link counters.
	// This is how the cross-validation tests reconcile observability
	// against emulator ground truth.
	Obs *obs.Registry
	// Trace, when non-nil, receives structured events from the sender,
	// receiver, and emulated links.
	Trace *obs.Trace
}

func (c *RunConfig) applyDefaults() {
	if c.PayloadBytes <= 0 {
		c.PayloadBytes = DefaultPayloadBytes
	}
	if c.ReassemblyTimeout <= 0 {
		c.ReassemblyTimeout = 500 * time.Millisecond
	}
}

// Result is the outcome of one run.
type Result struct {
	// OfferedSymbolRate is the attempted symbol rate (symbols/s).
	OfferedSymbolRate float64
	// AchievedSymbolRate is the delivered symbol rate (symbols/s).
	AchievedSymbolRate float64
	// AchievedMbps is the delivered rate in the paper's units.
	AchievedMbps float64
	// LossFraction is 1 - delivered/offered, the iperf datagram loss
	// report.
	LossFraction float64
	// MeanDelay is the average one-way symbol delay.
	MeanDelay time.Duration
	// Sender and Receiver are the protocol counters.
	Sender   remicss.SenderStats
	Receiver remicss.ReceiverStats
	// Links are the per-channel emulator counters, in channel order — the
	// ground truth the observability layer is reconciled against.
	Links []netem.LinkStats
}

// recordingChooser captures each choice so the driver can charge host cost.
type recordingChooser struct {
	inner remicss.Chooser
	k, m  int
}

func (r *recordingChooser) Choose(links []remicss.Link) (int, uint32, bool) {
	k, mask, ok := r.inner.Choose(links)
	if ok {
		r.k, r.m = k, bits.OnesCount32(mask)
	}
	return k, mask, ok
}

// Run executes one measurement: offer UDP-style load at the configured
// bitrate for the duration, and report achieved rate, loss, and delay.
func Run(cfg RunConfig) (Result, error) {
	cfg.applyDefaults()
	set := cfg.Setup.ChannelSet(cfg.PayloadBytes)
	if err := set.Validate(); err != nil {
		return Result{}, fmt.Errorf("bench: %w", err)
	}
	if cfg.Chooser != ChooserStriping {
		if err := set.CheckParams(cfg.Kappa, cfg.Mu); err != nil {
			return Result{}, fmt.Errorf("bench: %w", err)
		}
	}
	if cfg.OfferedMbps <= 0 {
		return Result{}, fmt.Errorf("bench: non-positive offered load %v", cfg.OfferedMbps)
	}
	if cfg.Duration <= 0 {
		return Result{}, fmt.Errorf("bench: non-positive duration %v", cfg.Duration)
	}

	eng := netem.NewEngine()
	scheme := sharing.NewAuto(rand.New(rand.NewSource(cfg.Seed))) //lint:allow insecure-rand benchmark runs must be reproducible from cfg.Seed

	var (
		delivered int64
		delaySum  time.Duration
	)
	recv, err := remicss.NewReceiver(remicss.ReceiverConfig{
		Scheme:  scheme,
		Clock:   eng.Now,
		Timeout: cfg.ReassemblyTimeout,
		Shards:  cfg.Shards,
		Metrics: cfg.Obs,
		Trace:   cfg.Trace,
		OnSymbol: func(_ uint64, _ []byte, delay time.Duration) {
			delivered++
			delaySum += delay
		},
	})
	if err != nil {
		return Result{}, fmt.Errorf("bench: %w", err)
	}

	linkCfgs := cfg.Setup.LinkConfigs(cfg.PayloadBytes, cfg.QueueLimit)
	links := make([]remicss.Link, len(linkCfgs))
	emLinks := make([]*netem.Link, len(linkCfgs))
	for i, lc := range linkCfgs {
		link, err := netem.NewLink(eng, lc, rand.New(rand.NewSource(cfg.Seed+int64(i)+1)),
			func(p []byte, _ time.Duration) { recv.HandleDatagram(p) })
		if err != nil {
			return Result{}, fmt.Errorf("bench: channel %d: %w", i, err)
		}
		if cfg.Obs != nil {
			link.Instrument(cfg.Obs, cfg.Trace, i)
		}
		links[i] = link
		emLinks[i] = link
	}

	chooser, err := buildChooser(cfg, set)
	if err != nil {
		return Result{}, err
	}
	rec := &recordingChooser{inner: chooser}
	snd, err := remicss.NewSender(remicss.SenderConfig{
		Scheme:  scheme,
		Chooser: rec,
		Clock:   eng.Now,
		Metrics: cfg.Obs,
		Trace:   cfg.Trace,
	}, links)
	if err != nil {
		return Result{}, fmt.Errorf("bench: %w", err)
	}

	// Offer load at fixed intervals, iperf-style. Each attempt either sends
	// a symbol or records a stall (socket-buffer drop analog).
	offeredRate := PacketsPerSecond(cfg.OfferedMbps, cfg.PayloadBytes)
	interval := time.Duration(float64(time.Second) / offeredRate)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	payload := make([]byte, cfg.PayloadBytes)
	for i := range payload {
		payload[i] = byte(i)
	}

	var attempts int64
	var hostBusyUntil time.Duration
	var offer func()
	offer = func() {
		attempts++
		if !cfg.HostCost.enabled() || hostBusyUntil <= eng.Now()+hostSlack {
			if err := snd.Send(payload); err == nil && cfg.HostCost.enabled() {
				start := hostBusyUntil
				if now := eng.Now(); start < now {
					start = now
				}
				hostBusyUntil = start + cfg.HostCost.perSymbol(rec.k, rec.m)
			}
		}
		next := eng.Now() + interval
		if next <= cfg.Duration {
			eng.At(next, offer)
		}
	}
	eng.Schedule(0, offer)
	eng.Run(cfg.Duration)
	// Drain in-flight shares so deliveries near the window edge count.
	eng.RunUntilIdle()

	res := Result{
		OfferedSymbolRate:  float64(attempts) / cfg.Duration.Seconds(),
		AchievedSymbolRate: float64(delivered) / cfg.Duration.Seconds(),
		Sender:             snd.Stats(),
		Receiver:           recv.Stats(),
		Links:              make([]netem.LinkStats, len(emLinks)),
	}
	for i, l := range emLinks {
		res.Links[i] = l.Stats()
	}
	res.AchievedMbps = Mbps(res.AchievedSymbolRate, cfg.PayloadBytes)
	if attempts > 0 {
		res.LossFraction = 1 - float64(delivered)/float64(attempts)
	}
	if delivered > 0 {
		res.MeanDelay = delaySum / time.Duration(delivered)
	}
	return res, nil
}

func buildChooser(cfg RunConfig, set core.Set) (remicss.Chooser, error) {
	switch cfg.Chooser {
	case ChooserDynamic:
		var opts []remicss.DynamicOption
		if cfg.IndexOrderChooser {
			opts = append(opts, remicss.IndexOrder())
		}
		c, err := remicss.NewDynamicChooser(cfg.Kappa, cfg.Mu, rand.New(rand.NewSource(cfg.Seed+100)), opts...)
		if err != nil {
			return nil, fmt.Errorf("bench: %w", err)
		}
		return c, nil
	case ChooserStaticMaxRate:
		sched, err := schedule.OptimizeAtMaxRate(set, cfg.Kappa, cfg.Mu, schedule.ObjectiveLoss, schedule.Options{})
		if err != nil {
			return nil, fmt.Errorf("bench: building static schedule: %w", err)
		}
		c, err := remicss.NewStaticChooser(sched, set.N(), rand.New(rand.NewSource(cfg.Seed+100)))
		if err != nil {
			return nil, fmt.Errorf("bench: %w", err)
		}
		return c, nil
	case ChooserStriping:
		c, err := striping.New(set.Rates())
		if err != nil {
			return nil, fmt.Errorf("bench: %w", err)
		}
		return c, nil
	default:
		return nil, fmt.Errorf("bench: unknown chooser kind %d", cfg.Chooser)
	}
}
