package bench

import (
	"fmt"
	"math/rand"
	"time"

	"remicss/internal/adapt"
	"remicss/internal/netem"
	"remicss/internal/remicss"
	"remicss/internal/sharing"
)

// AdaptiveEpoch is one control epoch of the adaptive experiment.
type AdaptiveEpoch struct {
	// At is the epoch end time.
	At time.Duration
	// Loss is the symbol loss measured over the epoch.
	Loss float64
	// Mu is the controller's multiplicity after acting on the epoch.
	Mu float64
	// GoodputMbps is the delivered rate over the epoch.
	GoodputMbps float64
}

// AdaptiveConfig parameterizes the adaptive-recovery experiment.
type AdaptiveConfig struct {
	// Duration is the total run length. Default 12s.
	Duration time.Duration
	// Epoch is the control interval. Default 500ms.
	Epoch time.Duration
	// BurstAt is when channel loss jumps. Default 4s.
	BurstAt time.Duration
	// BurstLoss is the per-channel loss during the burst. Default 0.25.
	BurstLoss float64
	// Seed fixes all randomness.
	Seed int64
}

func (c AdaptiveConfig) withDefaults() AdaptiveConfig {
	if c.Duration <= 0 {
		c.Duration = 12 * time.Second
	}
	if c.Epoch <= 0 {
		c.Epoch = 500 * time.Millisecond
	}
	if c.BurstAt <= 0 {
		c.BurstAt = 4 * time.Second
	}
	if c.BurstLoss <= 0 {
		c.BurstLoss = 0.25
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// RunAdaptive demonstrates the closed control loop the model enables
// (Section III-A: parameters "chosen and adjusted accordingly"): five
// identical channels, a mid-run loss burst, and the adapt.Controller
// raising μ to restore delivery — with the feedback traveling in-band as
// receiver reports.
func RunAdaptive(cfg AdaptiveConfig) ([]AdaptiveEpoch, error) {
	cfg = cfg.withDefaults()
	eng := netem.NewEngine()
	scheme := sharing.NewAuto(rand.New(rand.NewSource(cfg.Seed))) //lint:allow insecure-rand benchmark runs must be reproducible from cfg.Seed

	delivered := 0
	recv, err := remicss.NewReceiver(remicss.ReceiverConfig{
		Scheme:   scheme,
		Clock:    eng.Now,
		Timeout:  200 * time.Millisecond,
		OnSymbol: func(uint64, []byte, time.Duration) { delivered++ },
	})
	if err != nil {
		return nil, err
	}
	var netLinks []*netem.Link
	links := make([]remicss.Link, 5)
	for i := range links {
		l, err := netem.NewLink(eng, netem.LinkConfig{Rate: 2000},
			rand.New(rand.NewSource(cfg.Seed+int64(i)+1)),
			func(p []byte, _ time.Duration) { recv.HandleDatagram(p) })
		if err != nil {
			return nil, err
		}
		netLinks = append(netLinks, l)
		links[i] = l
	}
	// Feedback path: reports return over a dedicated reverse link.
	var feedback remicss.FeedbackState
	reverse, err := netem.NewLink(eng, netem.LinkConfig{Rate: 1000, Delay: 2 * time.Millisecond},
		rand.New(rand.NewSource(cfg.Seed+100)),
		func(p []byte, _ time.Duration) { feedback.Ingest(p) })
	if err != nil {
		return nil, err
	}

	ctrl, err := adapt.New(adapt.Config{
		N: 5, TargetLoss: 0.02, MaxRisk: 1, KappaFloor: 2, Step: 1, DecayAfter: 4,
	})
	if err != nil {
		return nil, err
	}

	var snd *remicss.Sender
	rebuild := func() error {
		kappa, mu := ctrl.Params()
		chooser, err := remicss.NewDynamicChooser(kappa, mu, rand.New(rand.NewSource(cfg.Seed+200)))
		if err != nil {
			return err
		}
		// Continue the sequence space across rebuilds: the receiver refuses
		// sequence numbers it has already delivered.
		var firstSeq uint64
		if snd != nil {
			firstSeq = snd.Seq()
		}
		s, err := remicss.NewSender(remicss.SenderConfig{
			Scheme: scheme, Chooser: chooser, Clock: eng.Now, FirstSeq: firstSeq,
		}, links)
		if err != nil {
			return err
		}
		snd = s
		return nil
	}
	if err := rebuild(); err != nil {
		return nil, err
	}

	var epochs []AdaptiveEpoch
	sent, lastSent := 0, 0
	var buildErr error

	var offer func()
	offer = func() {
		if err := snd.Send([]byte{byte(sent), byte(sent >> 8)}); err == nil {
			sent++
		}
		if eng.Now() < cfg.Duration {
			eng.Schedule(2*time.Millisecond, offer)
		}
	}
	var reportTick func()
	reportTick = func() {
		recv.Tick()
		reverse.Send(recv.MakeReport())
		if eng.Now() < cfg.Duration {
			eng.Schedule(cfg.Epoch/2, reportTick)
		}
	}
	warmedUp := false
	var control func()
	control = func() {
		ds := sent - lastSent
		lastSent = sent
		loss := feedback.LossSince(int64(ds))
		// The first epoch's reports lag half a cycle behind the symbols
		// sent, so its loss reading is an artifact; let the loop warm up
		// before acting.
		if warmedUp {
			ctrl.ObserveLoss(loss)
		}
		warmedUp = true
		if err := rebuild(); err != nil {
			buildErr = err
			return
		}
		_, mu := ctrl.Params()
		epochs = append(epochs, AdaptiveEpoch{
			At:          eng.Now(),
			Loss:        loss,
			Mu:          mu,
			GoodputMbps: Mbps(float64(ds)*(1-loss)/cfg.Epoch.Seconds(), DefaultPayloadBytes),
		})
		if eng.Now() < cfg.Duration {
			eng.Schedule(cfg.Epoch, control)
		}
	}
	eng.Schedule(0, offer)
	eng.Schedule(cfg.Epoch/2, reportTick)
	eng.Schedule(cfg.Epoch, control)
	eng.Schedule(cfg.BurstAt, func() {
		for _, l := range netLinks {
			l.SetLoss(cfg.BurstLoss)
		}
	})
	eng.Run(cfg.Duration)
	eng.RunUntilIdle()
	if buildErr != nil {
		return nil, fmt.Errorf("bench: rebuilding sender: %w", buildErr)
	}
	return epochs, nil
}
