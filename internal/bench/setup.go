// Package bench is the experiment harness: it reproduces every figure of
// the paper's evaluation (Section VI) over the internal/netem emulator.
//
// The paper's four network setups (Identical, Diverse, Lossy, Delayed) are
// defined here in their original Mbps/percent/millisecond terms and
// converted to the emulator's packets-per-second units using the benchmark
// payload size. Experiments follow the paper's method: offer iperf-style
// UDP load at a fixed bitrate for a measurement window, then read rate,
// loss, and delay from receiver-side counters.
package bench

import (
	"fmt"
	"time"

	"remicss/internal/core"
	"remicss/internal/netem"
)

// DefaultPayloadBytes is the source symbol size: one iperf-style UDP
// payload.
const DefaultPayloadBytes = 1400

// PacketsPerSecond converts a channel bitrate in Mbps into share symbols
// per second for the given payload size.
func PacketsPerSecond(mbps float64, payloadBytes int) float64 {
	return mbps * 1e6 / (float64(payloadBytes) * 8)
}

// Mbps converts a symbol rate back into Mbps for reporting.
func Mbps(pps float64, payloadBytes int) float64 {
	return pps * float64(payloadBytes) * 8 / 1e6
}

// Setup is one of the paper's pre-defined network configurations, in the
// paper's units.
type Setup struct {
	// Name identifies the setup in output tables.
	Name string
	// RateMbps is each channel's capacity in Mbps.
	RateMbps []float64
	// Loss is each channel's loss probability (per direction in the paper;
	// the forward direction is what share transport sees).
	Loss []float64
	// Delay is each channel's added one-way delay.
	Delay []time.Duration
}

// Identical returns the paper's Identical setup: five channels at the given
// rate with negligible loss and delay.
func Identical(mbps float64) Setup {
	s := Setup{Name: fmt.Sprintf("identical-%gMbps", mbps)}
	for i := 0; i < 5; i++ {
		s.RateMbps = append(s.RateMbps, mbps)
		s.Loss = append(s.Loss, 0)
		s.Delay = append(s.Delay, 0)
	}
	return s
}

// Diverse returns the paper's Diverse setup: 5, 20, 60, 65, 100 Mbps with
// negligible loss and delay.
func Diverse() Setup {
	return Setup{
		Name:     "diverse",
		RateMbps: []float64{5, 20, 60, 65, 100},
		Loss:     []float64{0, 0, 0, 0, 0},
		Delay:    make([]time.Duration, 5),
	}
}

// Lossy returns the paper's Lossy setup: Diverse rates with loss of 1, 0.5,
// 1, 2, and 3 percent.
func Lossy() Setup {
	s := Diverse()
	s.Name = "lossy"
	s.Loss = []float64{0.01, 0.005, 0.01, 0.02, 0.03}
	return s
}

// Delayed returns the paper's Delayed setup: Diverse rates with added
// one-way delays of 2.5, 0.25, 12.5, 5, and 0.5 ms.
func Delayed() Setup {
	s := Diverse()
	s.Name = "delayed"
	s.Delay = []time.Duration{
		2500 * time.Microsecond,
		250 * time.Microsecond,
		12500 * time.Microsecond,
		5 * time.Millisecond,
		500 * time.Microsecond,
	}
	return s
}

// N returns the number of channels.
func (s Setup) N() int { return len(s.RateMbps) }

// ChannelSet converts the setup into the model's channel set, with rates in
// symbols per second for the given payload size. Risks are not part of the
// paper's performance setups; they are set to a uniform nominal 0.1 so the
// set validates (the rate/loss/delay experiments never read them).
func (s Setup) ChannelSet(payloadBytes int) core.Set {
	set := make(core.Set, s.N())
	for i := range set {
		set[i] = core.Channel{
			Risk:  0.1,
			Loss:  s.Loss[i],
			Delay: s.Delay[i],
			Rate:  PacketsPerSecond(s.RateMbps[i], payloadBytes),
		}
	}
	return set
}

// LinkConfigs converts the setup into emulator link configurations.
func (s Setup) LinkConfigs(payloadBytes, queueLimit int) []netem.LinkConfig {
	cfgs := make([]netem.LinkConfig, s.N())
	for i := range cfgs {
		cfgs[i] = netem.LinkConfig{
			Rate:       PacketsPerSecond(s.RateMbps[i], payloadBytes),
			Loss:       s.Loss[i],
			Delay:      s.Delay[i],
			QueueLimit: queueLimit,
		}
	}
	return cfgs
}

// TotalMbps returns the aggregate channel capacity.
func (s Setup) TotalMbps() float64 {
	var sum float64
	for _, r := range s.RateMbps {
		sum += r
	}
	return sum
}
