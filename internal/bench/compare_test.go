package bench

import (
	"testing"
	"time"
)

// TestCompareProtocolsStory verifies the qualitative claims the comparison
// exists to demonstrate (paper Section V): under loss, reliable share
// transport (MICSS) stalls while the best-effort threshold protocol
// (ReMICSS at κ=3, μ=5) holds its rate with small symbol loss, and pure
// striping converts channel loss directly into symbol loss.
func TestCompareProtocolsStory(t *testing.T) {
	rows, err := CompareProtocols(FigureConfig{Duration: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}

	clean := rows[0]
	if clean.MICSSRetx != 0 {
		t.Errorf("lossless MICSS retransmitted %d shares", clean.MICSSRetx)
	}
	// Lossless: both secret sharing protocols run near one channel's rate;
	// striping near the aggregate.
	if clean.MICSSMbps < 45 || clean.MICSSMbps > 55 {
		t.Errorf("lossless MICSS = %v Mbps, want ~50", clean.MICSSMbps)
	}
	if clean.ReMICSSMbps < 45 || clean.ReMICSSMbps > 55 {
		t.Errorf("lossless ReMICSS = %v Mbps, want ~50", clean.ReMICSSMbps)
	}
	if clean.StripingMbps < 230 {
		t.Errorf("lossless striping = %v Mbps, want ~250", clean.StripingMbps)
	}

	worst := rows[len(rows)-1] // 10% loss
	if worst.MICSSMbps > 0.6*clean.MICSSMbps {
		t.Errorf("10%% loss MICSS = %v Mbps; expected collapse below 60%% of %v",
			worst.MICSSMbps, clean.MICSSMbps)
	}
	if worst.ReMICSSMbps < 0.9*clean.ReMICSSMbps {
		t.Errorf("10%% loss ReMICSS = %v Mbps; expected to hold near %v",
			worst.ReMICSSMbps, clean.ReMICSSMbps)
	}
	if worst.ReMICSSLossPct > 2 {
		t.Errorf("10%% loss ReMICSS symbol loss = %v%%, want < 2%% (m-k=2 redundancy)",
			worst.ReMICSSLossPct)
	}
	if worst.MICSSDelayMs < 2*clean.MICSSDelayMs {
		t.Errorf("10%% loss MICSS delay %vms did not inflate vs %vms",
			worst.MICSSDelayMs, clean.MICSSDelayMs)
	}
	// Striping symbol loss tracks channel loss.
	if worst.StripingLossPct < 8 || worst.StripingLossPct > 12 {
		t.Errorf("10%% loss striping symbol loss = %v%%, want ~10%%", worst.StripingLossPct)
	}
	if worst.MICSSRetx == 0 {
		t.Error("10% loss MICSS reported no retransmissions")
	}
}
