package bench

import (
	"fmt"
	"time"

	"remicss/internal/micss"
)

// CompareRow contrasts the three protocols at one channel-loss level on
// five identical 50 Mbps channels.
//
// MICSS (κ = μ = n, reliable transport) never loses a symbol but stalls on
// retransmissions; ReMICSS at κ=3, μ=5 rides out up to two share losses per
// symbol with no retransmission; striping (κ = μ = 1) maximizes rate with
// no redundancy, so channel loss translates directly into symbol loss.
type CompareRow struct {
	// LossPct is the per-channel loss probability applied to all channels.
	LossPct float64

	// MICSS results: goodput, mean symbol completion delay, and the number
	// of share retransmissions.
	MICSSMbps    float64
	MICSSDelayMs float64
	MICSSRetx    int64

	// ReMICSS (κ=3, μ=5) results.
	ReMICSSMbps    float64
	ReMICSSLossPct float64
	ReMICSSDelayMs float64

	// Striping (κ=μ=1) results.
	StripingMbps    float64
	StripingLossPct float64
}

// compareChannelMbps is the per-channel rate for the comparison: at μ = n
// both secret sharing protocols top out at one channel's rate, so 50 Mbps
// keeps runs fast while staying in the paper's range.
const compareChannelMbps = 50

// CompareProtocols measures all three protocols across loss levels. It is
// not a figure from the paper; it quantifies the Section V claim that
// reliable share transport (MICSS) wastes resources whenever k < m would
// do.
func CompareProtocols(fc FigureConfig) ([]CompareRow, error) {
	fc = fc.withDefaults()
	var rows []CompareRow
	for _, loss := range []float64{0, 0.01, 0.05, 0.10} {
		setup := Identical(compareChannelMbps)
		for i := range setup.Loss {
			setup.Loss[i] = loss
		}
		row := CompareRow{LossPct: loss * 100}

		mbps, delay, retx, err := runMICSS(setup, fc)
		if err != nil {
			return nil, fmt.Errorf("compare MICSS at %v%%: %w", loss*100, err)
		}
		row.MICSSMbps, row.MICSSDelayMs, row.MICSSRetx = mbps, delay, retx

		re, err := Run(RunConfig{
			Setup:       setup,
			Kappa:       3,
			Mu:          5,
			OfferedMbps: compareChannelMbps, // R_C at μ=5 is one channel's rate
			Duration:    fc.Duration,
			Seed:        fc.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("compare ReMICSS at %v%%: %w", loss*100, err)
		}
		row.ReMICSSMbps = re.AchievedMbps
		row.ReMICSSLossPct = re.LossFraction * 100
		row.ReMICSSDelayMs = float64(re.MeanDelay) / float64(time.Millisecond)

		st, err := Run(RunConfig{
			Setup:       setup,
			Chooser:     ChooserStriping,
			OfferedMbps: setup.TotalMbps(),
			Duration:    fc.Duration,
			Seed:        fc.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("compare striping at %v%%: %w", loss*100, err)
		}
		row.StripingMbps = st.AchievedMbps
		row.StripingLossPct = st.LossFraction * 100

		rows = append(rows, row)
	}
	return rows, nil
}

// runMICSS drives a MICSS session at saturating offered load and reports
// goodput (Mbps), mean completion delay (ms), and retransmissions.
func runMICSS(setup Setup, fc FigureConfig) (float64, float64, int64, error) {
	session, err := micss.NewSession(micss.Config{
		Links:  setup.LinkConfigs(fc.PayloadBytes, 64),
		Window: 32,
		Seed:   fc.Seed,
		RTO:    50 * time.Millisecond,
	})
	if err != nil {
		return 0, 0, 0, err
	}
	eng := session.Engine()
	payload := make([]byte, fc.PayloadBytes)
	// Offer 1.2x one channel's rate: MICSS cannot exceed the slowest
	// channel since every symbol occupies every channel.
	offered := PacketsPerSecond(setup.RateMbps[0], fc.PayloadBytes) * 1.2
	interval := time.Duration(float64(time.Second) / offered)
	var offer func()
	offer = func() {
		if err := session.Send(payload); err != nil {
			return
		}
		next := eng.Now() + interval
		if next <= fc.Duration {
			eng.At(next, offer)
		}
	}
	eng.Schedule(0, offer)
	eng.Run(fc.Duration)
	// Snapshot at the horizon: MICSS queues excess offered load without
	// bound, so counting post-horizon drainage would credit it with more
	// than its channels can carry.
	st := session.Stats()
	mbps := Mbps(float64(st.SymbolsDelivered)/fc.Duration.Seconds(), fc.PayloadBytes)
	delayMs := float64(st.MeanDelay) / float64(time.Millisecond)
	return mbps, delayMs, st.Retransmissions, nil
}
