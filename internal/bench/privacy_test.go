package bench

import (
	"testing"

	"remicss/internal/chaos"
	"remicss/internal/leakage"
	"remicss/internal/obs"
)

// The acceptance criterion: the builtin correlated-blackout scenario must
// score strictly higher exposure under correlation than under the paper's
// independence assumption — the whole point of the correlated model.
func TestCorrBlackoutScoresHigherUnderCorrelation(t *testing.T) {
	sc, ok := chaos.Builtin("corrblackout")
	if !ok {
		t.Fatal("corrblackout missing")
	}
	reg := obs.NewRegistry()
	res, err := RunChaos(ChaosConfig{
		Scenario: sc,
		Obs:      reg,
		Privacy:  &PrivacyConfig{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FloorOK || !res.ThresholdOK {
		t.Fatalf("delivery gates failed: %+v", res)
	}
	p := res.Privacy
	if p == nil {
		t.Fatal("no privacy report")
	}
	if len(p.Groups) != 1 || p.Groups[0] != 0b011 {
		t.Fatalf("derived groups %b, want [0b011]", p.Groups)
	}
	if p.Rho != DefaultPrivacyRho {
		t.Fatalf("rho %v, want default %v", p.Rho, DefaultPrivacyRho)
	}
	if p.SymbolsScored == 0 {
		t.Fatal("no symbols scored")
	}
	if p.MeanCorrelatedExposure <= p.MeanIndependentExposure {
		t.Fatalf("mean correlated exposure %v not strictly above independent %v",
			p.MeanCorrelatedExposure, p.MeanIndependentExposure)
	}
	if p.MaxCorrelatedExposure <= p.MaxIndependentExposure {
		t.Fatalf("max correlated exposure %v not strictly above independent %v",
			p.MaxCorrelatedExposure, p.MaxIndependentExposure)
	}
	if p.MaxGroupExposure <= 0 {
		t.Fatal("group-attributable exposure is zero for a grouped schedule")
	}
	// λ = 0: the leakage bound is exactly the max correlated exposure.
	if p.LeakageBound != p.MaxCorrelatedExposure {
		t.Fatalf("λ=0 leakage bound %v != max correlated exposure %v",
			p.LeakageBound, p.MaxCorrelatedExposure)
	}
	// No budget configured: the gate is vacuous and the run passes.
	if !p.BudgetOK || !res.Pass() {
		t.Fatalf("budget gate failed without a budget: %+v", p)
	}
	// The meter's series landed in the registry with real data.
	if reg.Counter("remicss_privacy_symbols_total").Value() != p.SymbolsScored {
		t.Fatal("remicss_privacy_symbols_total does not match the report")
	}
	if reg.Counter("remicss_privacy_shares_observed_total", obs.Label{Key: "channel", Value: "0"}).Value() == 0 {
		t.Fatal("no observed shares recorded for grouped channel 0")
	}
}

// A tight budget must flip the privacy gate (and only that gate).
func TestPrivacyBudgetGate(t *testing.T) {
	sc, ok := chaos.Builtin("corrblackout")
	if !ok {
		t.Fatal("corrblackout missing")
	}
	res, err := RunChaos(ChaosConfig{
		Scenario: sc,
		Privacy:  &PrivacyConfig{Leakage: leakage.Config{Budget: 1e-6}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Privacy.BudgetOK || res.Pass() {
		t.Fatalf("1e-6 budget passed with leakage bound %v", res.Privacy.LeakageBound)
	}
	if res.Privacy.Alerts == 0 {
		t.Fatal("no alerts despite budget violation")
	}
	if !res.FloorOK || !res.ThresholdOK {
		t.Fatal("privacy budget leaked into delivery gates")
	}
}

// Privacy scoring with the resolve chooser exercises ResolveCorrelated:
// the run must stay deterministic and keep the threshold floor.
func TestPrivacyWithResolveCorrelated(t *testing.T) {
	sc, ok := chaos.Builtin("corrblackout")
	if !ok {
		t.Fatal("corrblackout missing")
	}
	run := func() ChaosResult {
		res, err := RunChaos(ChaosConfig{
			Scenario: sc,
			Resolve:  true,
			Privacy:  &PrivacyConfig{Rho: 0.6},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !a.ThresholdOK {
		t.Fatalf("threshold floor broken under correlated resolve: %+v", a)
	}
	if a.Delivered != b.Delivered || a.Privacy.MeanCorrelatedExposure != b.Privacy.MeanCorrelatedExposure {
		t.Fatalf("correlated-resolve runs not deterministic: %+v vs %+v", a, b)
	}
	if a.Privacy.Rho != 0.6 {
		t.Fatalf("explicit rho not honored: %v", a.Privacy.Rho)
	}
}

// A scenario with no overlapping blackouts derives no groups: correlated
// and independent exposure coincide, making the report a controlled
// baseline row.
func TestPrivacyNoGroupsReducesToIndependent(t *testing.T) {
	sc, ok := chaos.Builtin("blackout")
	if !ok {
		t.Fatal("blackout missing")
	}
	res, err := RunChaos(ChaosConfig{Scenario: sc, Privacy: &PrivacyConfig{}})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Privacy
	if len(p.Groups) != 0 {
		t.Fatalf("blackout derived groups %b", p.Groups)
	}
	if p.MeanCorrelatedExposure != p.MeanIndependentExposure {
		t.Fatalf("ungrouped run: correlated %v != independent %v",
			p.MeanCorrelatedExposure, p.MeanIndependentExposure)
	}
	if p.MaxGroupExposure != 0 {
		t.Fatalf("ungrouped run has group exposure %v", p.MaxGroupExposure)
	}
}
