package bench

import (
	"fmt"
	"math"
	"strings"
	"time"

	"remicss/internal/obs"
	"remicss/internal/schedule"
)

// FigureConfig scales the figure sweeps. The zero value uses paper-like
// defaults (except duration, which is shortened from the paper's 30–60 s to
// keep full regeneration interactive; results stabilize well before 2 s of
// virtual time at these rates).
type FigureConfig struct {
	// Duration is the measurement window per point. Default 2s.
	Duration time.Duration
	// MuStep is the μ sweep granularity. Default 0.1, as in the paper.
	MuStep float64
	// Seed drives all randomness. Default 1.
	Seed int64
	// PayloadBytes is the symbol size. Default DefaultPayloadBytes.
	PayloadBytes int
	// RateProbeMbps is the offered load for rate measurements (the paper
	// uses iperf at 1000 Mbps). Default 1000.
	RateProbeMbps float64
	// Obs and Trace, when non-nil, are threaded into every Run the sweep
	// performs (see RunConfig.Obs), so a figure regeneration can be watched
	// live over the metrics endpoint. Counters accumulate across the
	// sweep's runs.
	Obs   *obs.Registry
	Trace *obs.Trace
}

func (c FigureConfig) withDefaults() FigureConfig {
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.MuStep <= 0 {
		c.MuStep = 0.1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.PayloadBytes <= 0 {
		c.PayloadBytes = DefaultPayloadBytes
	}
	if c.RateProbeMbps <= 0 {
		c.RateProbeMbps = 1000
	}
	return c
}

// muSweep enumerates μ values from kappa to n in MuStep increments,
// including both endpoints. Values are rounded to avoid floating-point
// accumulation drifting the grid.
func muSweep(kappa float64, n int, step float64) []float64 {
	var out []float64
	for i := 0; ; i++ {
		mu := math.Round((kappa+float64(i)*step)*1e9) / 1e9
		if mu >= float64(n) {
			out = append(out, float64(n))
			return out
		}
		out = append(out, mu)
	}
}

// RatePoint is one (κ, μ) sample of a rate figure.
type RatePoint struct {
	Kappa, Mu   float64
	OptimalMbps float64
	ActualMbps  float64
}

// Fig3 reproduces Figure 3: optimal and actual rate over κ and μ for the
// given setup (the paper shows the 100 Mbps Identical setup and the Diverse
// setup).
func Fig3(setup Setup, fc FigureConfig) ([]RatePoint, error) {
	fc = fc.withDefaults()
	set := setup.ChannelSet(fc.PayloadBytes)
	var points []RatePoint
	for kappa := 1; kappa <= set.N(); kappa++ {
		for _, mu := range muSweep(float64(kappa), set.N(), fc.MuStep) {
			rc, err := set.OptimalRate(mu)
			if err != nil {
				return nil, err
			}
			res, err := Run(RunConfig{
				Setup:        setup,
				Kappa:        float64(kappa),
				Mu:           mu,
				OfferedMbps:  fc.RateProbeMbps,
				Duration:     fc.Duration,
				Seed:         fc.Seed,
				PayloadBytes: fc.PayloadBytes,
				Obs:          fc.Obs,
				Trace:        fc.Trace,
			})
			if err != nil {
				return nil, fmt.Errorf("fig3 κ=%d μ=%.2f: %w", kappa, mu, err)
			}
			points = append(points, RatePoint{
				Kappa:       float64(kappa),
				Mu:          mu,
				OptimalMbps: Mbps(rc, fc.PayloadBytes),
				ActualMbps:  res.AchievedMbps,
			})
		}
	}
	return points, nil
}

// DelayPoint is one (κ, μ) sample of the delay figure.
type DelayPoint struct {
	Kappa, Mu float64
	// OptimalMs is the LP optimum D(p) at maximum rate, in milliseconds.
	OptimalMs float64
	// ActualMs is the measured mean one-way delay at the measured maximum
	// rate, in milliseconds.
	ActualMs float64
}

// Fig4 reproduces Figure 4: optimal and actual delay at maximum rate on the
// Delayed setup. Following the paper's method, the actual measurement
// offers load at the rate achieved in a first measurement pass.
func Fig4(fc FigureConfig) ([]DelayPoint, error) {
	fc = fc.withDefaults()
	setup := Delayed()
	set := setup.ChannelSet(fc.PayloadBytes)
	var points []DelayPoint
	for kappa := 1; kappa <= set.N(); kappa++ {
		for _, mu := range muSweep(float64(kappa), set.N(), fc.MuStep) {
			opt, err := schedule.OptimizeAtMaxRate(set, float64(kappa), mu, schedule.ObjectiveDelay, schedule.Options{})
			if err != nil {
				return nil, fmt.Errorf("fig4 κ=%d μ=%.2f: %w", kappa, mu, err)
			}
			actual, err := measureAtMaxRate(setup, float64(kappa), mu, fc)
			if err != nil {
				return nil, fmt.Errorf("fig4 κ=%d μ=%.2f: %w", kappa, mu, err)
			}
			points = append(points, DelayPoint{
				Kappa:     float64(kappa),
				Mu:        mu,
				OptimalMs: opt.Delay(set) * 1e3,
				ActualMs:  float64(actual.MeanDelay) / float64(time.Millisecond),
			})
		}
	}
	return points, nil
}

// LossPoint is one (κ, μ) sample of the loss figure.
type LossPoint struct {
	Kappa, Mu float64
	// OptimalLoss is the LP optimum L(p) at maximum rate.
	OptimalLoss float64
	// ActualLoss is the measured fraction of offered symbols not delivered.
	ActualLoss float64
}

// Fig5 reproduces Figure 5: loss at maximum rate on the Lossy setup.
func Fig5(fc FigureConfig) ([]LossPoint, error) {
	fc = fc.withDefaults()
	setup := Lossy()
	set := setup.ChannelSet(fc.PayloadBytes)
	var points []LossPoint
	for kappa := 1; kappa <= set.N(); kappa++ {
		for _, mu := range muSweep(float64(kappa), set.N(), fc.MuStep) {
			opt, err := schedule.OptimizeAtMaxRate(set, float64(kappa), mu, schedule.ObjectiveLoss, schedule.Options{})
			if err != nil {
				return nil, fmt.Errorf("fig5 κ=%d μ=%.2f: %w", kappa, mu, err)
			}
			actual, err := measureAtMaxRate(setup, float64(kappa), mu, fc)
			if err != nil {
				return nil, fmt.Errorf("fig5 κ=%d μ=%.2f: %w", kappa, mu, err)
			}
			points = append(points, LossPoint{
				Kappa:       float64(kappa),
				Mu:          mu,
				OptimalLoss: opt.Loss(set),
				ActualLoss:  actual.LossFraction,
			})
		}
	}
	return points, nil
}

// measureAtMaxRate reproduces the paper's two-phase method: measure the
// achievable rate with a saturating probe, then run the real measurement
// offered at exactly that rate.
func measureAtMaxRate(setup Setup, kappa, mu float64, fc FigureConfig) (Result, error) {
	probe, err := Run(RunConfig{
		Setup:        setup,
		Kappa:        kappa,
		Mu:           mu,
		OfferedMbps:  fc.RateProbeMbps,
		Duration:     fc.Duration,
		Seed:         fc.Seed,
		PayloadBytes: fc.PayloadBytes,
		Obs:          fc.Obs,
		Trace:        fc.Trace,
	})
	if err != nil {
		return Result{}, err
	}
	offered := probe.AchievedMbps
	if offered <= 0 {
		return Result{}, fmt.Errorf("bench: probe achieved no throughput")
	}
	return Run(RunConfig{
		Setup:        setup,
		Kappa:        kappa,
		Mu:           mu,
		OfferedMbps:  offered,
		Duration:     fc.Duration,
		Seed:         fc.Seed + 7777,
		PayloadBytes: fc.PayloadBytes,
		Obs:          fc.Obs,
		Trace:        fc.Trace,
	})
}

// ScalingPoint is one sample of the high-bandwidth experiment.
type ScalingPoint struct {
	// ChannelMbps is the per-channel rate of the Identical setup.
	ChannelMbps float64
	// Kappa is the threshold parameter (μ is 1 in Fig6, 5 in Fig7).
	Kappa float64
	// OptimalMbps is the model's R_C in Mbps.
	OptimalMbps float64
	// ActualMbps is the achieved rate under the host cost model.
	ActualMbps float64
}

// Fig6 reproduces Figure 6: achieved vs optimal rate on the Identical setup
// as the per-channel rate grows from 100 to 800 Mbps, with κ = μ = 1. The
// sender CPU model (HostCost) reproduces the paper's leveling-off near
// 750 Mbps aggregate.
func Fig6(fc FigureConfig) ([]ScalingPoint, error) {
	return scalingSweep(fc, 1, []float64{1})
}

// Fig7 reproduces Figure 7: the same sweep with μ = 5 and κ from 1 to 5;
// larger thresholds hit the host bottleneck sooner.
func Fig7(fc FigureConfig) ([]ScalingPoint, error) {
	return scalingSweep(fc, 5, []float64{1, 2, 3, 4, 5})
}

func scalingSweep(fc FigureConfig, mu float64, kappas []float64) ([]ScalingPoint, error) {
	fc = fc.withDefaults()
	var points []ScalingPoint
	for _, kappa := range kappas {
		for mbps := 100.0; mbps <= 800; mbps += 25 {
			setup := Identical(mbps)
			set := setup.ChannelSet(fc.PayloadBytes)
			rc, err := set.OptimalRate(mu)
			if err != nil {
				return nil, err
			}
			res, err := Run(RunConfig{
				Setup:        setup,
				Kappa:        kappa,
				Mu:           mu,
				OfferedMbps:  setup.TotalMbps() / mu * 1.25,
				Duration:     fc.Duration,
				Seed:         fc.Seed,
				HostCost:     DefaultHostCost,
				PayloadBytes: fc.PayloadBytes,
				Obs:          fc.Obs,
				Trace:        fc.Trace,
			})
			if err != nil {
				return nil, fmt.Errorf("fig6/7 κ=%g rate=%g: %w", kappa, mbps, err)
			}
			points = append(points, ScalingPoint{
				ChannelMbps: mbps,
				Kappa:       kappa,
				OptimalMbps: Mbps(rc, fc.PayloadBytes),
				ActualMbps:  res.AchievedMbps,
			})
		}
	}
	return points, nil
}

// Fig2Packing reproduces Figure 2: the water-filling choice of M over one
// unit time for channel rates (3, 4, 8) at each integral multiplicity. It
// returns the packings indexed by m.
func Fig2Packing() (map[int][]uint32, error) {
	slots := []int{3, 4, 8}
	out := make(map[int][]uint32, len(slots))
	for m := 1; m <= len(slots); m++ {
		packing, err := schedule.Pack(slots, m)
		if err != nil {
			return nil, err
		}
		out[m] = packing
	}
	return out, nil
}

// RenderFig2 draws a packing as the paper's Figure 2 does: one row per
// channel, one column per source symbol, an asterisk where the symbol's
// share occupies the channel.
func RenderFig2(slots []int, packing []uint32) string {
	var b strings.Builder
	for ch := range slots {
		fmt.Fprintf(&b, "channel %d (r=%d): ", ch, slots[ch])
		for _, mask := range packing {
			if mask&(1<<uint(ch)) != 0 {
				b.WriteByte('*')
			} else {
				b.WriteByte('.')
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "symbols sent: %d\n", len(packing))
	return b.String()
}
