package bench

import (
	"math"
	mrand "math/rand"
	"testing"
	"time"

	"remicss/internal/core"
)

// TestModelProtocolCrossValidation is the strongest internal consistency
// check in the repository: for a grid of fixed (k, M) assignments, the
// closed-form subset formulas of internal/core must predict what the full
// protocol stack actually measures on emulated channels.
func TestModelProtocolCrossValidation(t *testing.T) {
	setup := Lossy() // diverse rates, per-channel loss 0.5%..3%
	set := setup.ChannelSet(DefaultPayloadBytes)
	fullMask := set.FullMask()

	for k := 1; k <= 5; k++ {
		// Offer well below R_C for m=5 (the 5 Mbps channel binds) so
		// sender-side stalls and queueing do not contaminate the
		// measurement; what remains is pure channel behavior.
		res, err := Run(RunConfig{
			Setup:       setup,
			Kappa:       float64(k),
			Mu:          5,
			OfferedMbps: 3,
			Duration:    4 * time.Second,
			Seed:        int64(900 + k),
		})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}

		wantLoss := set.SubsetLoss(k, fullMask)
		if math.Abs(res.LossFraction-wantLoss) > 0.02 {
			t.Errorf("k=%d: measured loss %.4f, model %.4f", k, res.LossFraction, wantLoss)
		}
	}
}

// TestDelayedSetupDelayCrossValidation validates d(k, M) against measured
// delay on the Delayed setup at low load.
func TestDelayedSetupDelayCrossValidation(t *testing.T) {
	setup := Delayed()
	set := setup.ChannelSet(DefaultPayloadBytes)
	fullMask := set.FullMask()

	for k := 1; k <= 5; k++ {
		res, err := Run(RunConfig{
			Setup:       setup,
			Kappa:       float64(k),
			Mu:          5,
			OfferedMbps: 3,
			Duration:    4 * time.Second,
			Seed:        int64(950 + k),
		})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		want := set.SubsetDelay(k, fullMask)
		got := res.MeanDelay.Seconds()
		// Serialization adds up to one packet time on the slowest channel
		// (~2.24ms at 446 pps); allow that plus slack.
		if got < want-1e-4 || got > want+0.004 {
			t.Errorf("k=%d: measured delay %.4fs, model %.4fs", k, got, want)
		}
	}
}

// TestScheduleRiskMonteCarlo validates Z(p) by simulating the adversary
// against the exact share placements an LP schedule produces.
func TestScheduleRiskMonteCarlo(t *testing.T) {
	set := core.Set{
		{Risk: 0.6, Rate: 100},
		{Risk: 0.3, Rate: 100},
		{Risk: 0.2, Rate: 100},
		{Risk: 0.4, Rate: 100},
	}
	sched := core.Schedule{
		{K: 1, Mask: 0b0110}: 0.3,
		{K: 2, Mask: 0b0111}: 0.4,
		{K: 3, Mask: 0b1111}: 0.3,
	}
	if err := sched.Validate(set.N()); err != nil {
		t.Fatal(err)
	}
	predicted := sched.Risk(set)

	rng := newDeterministicRand(31)
	const symbols = 300000
	leaks := 0
	// Inverse-transform sampling over the schedule's support.
	support := sched.Support()
	cum := make([]float64, len(support))
	total := 0.0
	for i, a := range support {
		total += sched[a]
		cum[i] = total
	}
	for s := 0; s < symbols; s++ {
		u := rng.Float64() * total
		var a core.Assignment
		for i := range support {
			if u <= cum[i] {
				a = support[i]
				break
			}
		}
		observed := 0
		for i := range set {
			if a.Mask&(1<<uint(i)) != 0 && rng.Float64() < set[i].Risk {
				observed++
			}
		}
		if observed >= a.K {
			leaks++
		}
	}
	empirical := float64(leaks) / symbols
	if math.Abs(empirical-predicted) > 0.005 {
		t.Errorf("Z(p): predicted %.5f, Monte Carlo %.5f", predicted, empirical)
	}
}

// newDeterministicRand centralizes RNG creation for the Monte Carlo checks.
func newDeterministicRand(seed int64) *mrand.Rand {
	return mrand.New(mrand.NewSource(seed))
}
