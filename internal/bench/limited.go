package bench

import (
	"fmt"

	"remicss/internal/schedule"
)

// LimitedRow compares unlimited and limited (Section IV-E) schedule optima
// at one (κ, μ) point on the Delayed+Lossy channel profile.
//
// Limited schedules guarantee every symbol uses k >= ⌊κ⌋ — required under
// the MICSS/courier threat model where the adversary always controls a
// fixed channel subset — but, as the paper's Section IV-E counterexample
// shows, they can be strictly worse on the other properties. This
// experiment maps where and by how much.
type LimitedRow struct {
	Kappa, Mu float64
	// Unlimited and Limited give the optimal objective value under each
	// schedule family.
	UnlimitedRisk, LimitedRisk       float64
	UnlimitedDelayMs, LimitedDelayMs float64
}

// CompareLimited evaluates the limited-schedule penalty over a (κ, μ) grid
// on the paper's Delayed setup with the Lossy setup's loss rates and
// nominal risks (so every objective is non-trivial).
func CompareLimited(fc FigureConfig) ([]LimitedRow, error) {
	fc = fc.withDefaults()
	setup := Delayed()
	setup.Loss = Lossy().Loss
	set := setup.ChannelSet(fc.PayloadBytes)
	risks := []float64{0.30, 0.10, 0.20, 0.25, 0.15}
	for i := range set {
		set[i].Risk = risks[i]
	}

	var rows []LimitedRow
	for kappa := 1; kappa <= set.N(); kappa++ {
		for _, mu := range muSweep(float64(kappa), set.N(), fc.MuStep) {
			row := LimitedRow{Kappa: float64(kappa), Mu: mu}
			for _, limited := range []bool{false, true} {
				opts := schedule.Options{Limited: limited}
				rs, err := schedule.Optimize(set, float64(kappa), mu, schedule.ObjectiveRisk, opts)
				if err != nil {
					return nil, fmt.Errorf("limited=%v risk κ=%d μ=%.2f: %w", limited, kappa, mu, err)
				}
				ds, err := schedule.Optimize(set, float64(kappa), mu, schedule.ObjectiveDelay, opts)
				if err != nil {
					return nil, fmt.Errorf("limited=%v delay κ=%d μ=%.2f: %w", limited, kappa, mu, err)
				}
				if limited {
					row.LimitedRisk = rs.Risk(set)
					row.LimitedDelayMs = ds.Delay(set) * 1e3
				} else {
					row.UnlimitedRisk = rs.Risk(set)
					row.UnlimitedDelayMs = ds.Delay(set) * 1e3
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}
