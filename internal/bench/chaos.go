package bench

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"remicss/internal/chaos"
	"remicss/internal/core"
	"remicss/internal/netem"
	"remicss/internal/obs"
	"remicss/internal/remicss"
	"remicss/internal/schedule"
	"remicss/internal/sharing"
)

// ChaosSetup returns the network the builtin chaos scenarios target: three
// identical 20 Mbps channels with no baseline loss or delay, so every
// degradation in a chaos run is attributable to the injected faults.
func ChaosSetup() Setup {
	s := Setup{Name: "chaos-3x20Mbps"}
	for i := 0; i < 3; i++ {
		s.RateMbps = append(s.RateMbps, 20)
		s.Loss = append(s.Loss, 0)
		s.Delay = append(s.Delay, 0)
	}
	return s
}

// ChaosConfig parameterizes one chaos run: a fault scenario replayed over
// the emulator against a sender using the channel-health failover chooser.
type ChaosConfig struct {
	// Scenario is the fault script. Required; its Seed drives every RNG in
	// the run and its Duration is the measurement window.
	Scenario *chaos.Scenario
	// Setup is the baseline network. Zero value uses ChaosSetup.
	Setup Setup
	// Kappa and Mu are the protocol parameters. Defaults: κ = 2, μ = 3.
	Kappa, Mu float64
	// OfferedMbps is the iperf-style offered load. Default 4 Mbps — well
	// under capacity, so measured loss reflects faults, not congestion.
	OfferedMbps float64
	// Health tunes the failover state machine; the zero value uses the
	// tracker defaults.
	Health remicss.HealthConfig
	// Resolve switches the chooser from multiplicity clamping to LP
	// re-solving over the surviving channels (remicss.Resolve).
	Resolve bool
	// Privacy, when non-nil, scores the run under the correlated-adversary
	// model and leakage meter and attaches a PrivacyReport to the result.
	// When Resolve is also set, the chooser re-solves under the same
	// correlated model (remicss.ResolveCorrelated).
	Privacy *PrivacyConfig
	// PayloadBytes is the symbol size. Defaults to DefaultPayloadBytes.
	PayloadBytes int
	// Obs, when non-nil, receives every metric series the run produces,
	// including the remicss_channel_* health series.
	Obs *obs.Registry
	// Trace, when non-nil, receives the run's structured events. Nil
	// allocates a private ring sized for the run; RunChaos reads the trace
	// either way — it is the ground truth for the threshold-floor check.
	Trace *obs.Trace
}

func (c *ChaosConfig) applyDefaults() {
	if c.Setup.N() == 0 {
		c.Setup = ChaosSetup()
	}
	if c.Kappa == 0 && c.Mu == 0 {
		c.Kappa, c.Mu = 2, 3
	}
	if c.OfferedMbps == 0 {
		c.OfferedMbps = 4
	}
	if c.PayloadBytes <= 0 {
		c.PayloadBytes = DefaultPayloadBytes
	}
	if c.Trace == nil {
		c.Trace = obs.NewTrace(1 << 17)
	}
}

// ChaosResult is the degradation report from one chaos run.
type ChaosResult struct {
	// Scenario and Seed identify the replayed script.
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`
	// Offered and Delivered count symbols attempted and reconstructed.
	Offered   int64 `json:"offered"`
	Delivered int64 `json:"delivered"`
	// DeliveryRatio is Delivered/Offered; Floor is the scenario's minimum
	// acceptable ratio and FloorOK whether the run cleared it.
	DeliveryRatio float64 `json:"delivery_ratio"`
	Floor         float64 `json:"floor"`
	FloorOK       bool    `json:"floor_ok"`
	// MinThreshold is the smallest threshold k of any scheduled symbol —
	// taken from the chooser (every symbol) and cross-checked against the
	// symbol-scheduled trace events. KappaFloor is ⌊κ⌋ and ThresholdOK
	// whether MinThreshold stayed at or above it (the Theorem 5 secrecy
	// floor: degradation sheds multiplicity, never threshold).
	MinThreshold int  `json:"min_threshold"`
	KappaFloor   int  `json:"kappa_floor"`
	ThresholdOK  bool `json:"threshold_ok"`
	// FaultsInjected counts fault transitions applied by the scripter;
	// Failovers counts transitions to the Down state, Recoveries
	// transitions back to Healthy, and Probes admitted probe datagrams.
	FaultsInjected int `json:"faults_injected"`
	Failovers      int `json:"failovers"`
	Recoveries     int `json:"recoveries"`
	Probes         int `json:"probes"`
	// MeanDelay is the average one-way delay of delivered symbols.
	MeanDelay time.Duration `json:"mean_delay_ns"`
	// FinalStates is each channel's health state when the run ended.
	FinalStates []string `json:"final_states"`
	// Links are the per-channel emulator ground-truth counters.
	Links []netem.LinkStats `json:"links"`
	// Privacy is the correlated-adversary verdict, present when the run
	// was configured with a PrivacyConfig.
	Privacy *PrivacyReport `json:"privacy,omitempty"`
}

// Pass reports whether the run met its acceptance gates: the delivery
// floor, the threshold floor, and — when privacy scoring was configured —
// the leakage budget.
func (r ChaosResult) Pass() bool {
	return r.FloorOK && r.ThresholdOK && (r.Privacy == nil || r.Privacy.BudgetOK)
}

// minKChooser wraps the health chooser and tracks the smallest threshold it
// ever returned, immune to trace-ring wrap. With counts non-nil it also
// tallies the realized schedule — how many symbols each (k, M) assignment
// carried — for privacy scoring.
type minKChooser struct {
	inner  remicss.Chooser
	minK   int
	counts map[core.Assignment]int64
}

func (c *minKChooser) Choose(links []remicss.Link) (int, uint32, bool) {
	k, mask, ok := c.inner.Choose(links)
	if ok {
		if c.minK == 0 || k < c.minK {
			c.minK = k
		}
		if c.counts != nil {
			c.counts[core.Assignment{K: k, Mask: mask}]++
		}
	}
	return k, mask, ok
}

// RunChaos replays one fault scenario over the emulator: it wires a sender
// (health tracker + failover chooser) and receiver across emulated links,
// applies the scenario's scripted faults, offers steady load for the
// scenario duration, and reports delivery degradation alongside the
// threshold-floor check. Runs are deterministic: the same scenario and
// config replay the same fault timeline and schedule, bit for bit.
func RunChaos(cfg ChaosConfig) (ChaosResult, error) {
	if cfg.Scenario == nil {
		return ChaosResult{}, fmt.Errorf("bench: nil chaos scenario")
	}
	cfg.applyDefaults()
	if err := cfg.Scenario.Validate(cfg.Setup.N()); err != nil {
		return ChaosResult{}, fmt.Errorf("bench: %w", err)
	}
	set := cfg.Setup.ChannelSet(cfg.PayloadBytes)
	if err := set.Validate(); err != nil {
		return ChaosResult{}, fmt.Errorf("bench: %w", err)
	}
	if err := set.CheckParams(cfg.Kappa, cfg.Mu); err != nil {
		return ChaosResult{}, fmt.Errorf("bench: %w", err)
	}

	eng := netem.NewEngine()
	seed := cfg.Scenario.Seed
	scheme := sharing.NewAuto(rand.New(rand.NewSource(seed))) //lint:allow insecure-rand chaos runs must replay exactly from the scenario seed

	var (
		delivered int64
		delaySum  time.Duration
	)
	recv, err := remicss.NewReceiver(remicss.ReceiverConfig{
		Scheme:  scheme,
		Clock:   eng.Now,
		Timeout: 500 * time.Millisecond,
		Metrics: cfg.Obs,
		Trace:   cfg.Trace,
		OnSymbol: func(_ uint64, _ []byte, delay time.Duration) {
			delivered++
			delaySum += delay
		},
	})
	if err != nil {
		return ChaosResult{}, fmt.Errorf("bench: %w", err)
	}

	linkCfgs := cfg.Setup.LinkConfigs(cfg.PayloadBytes, 0)
	links := make([]remicss.Link, len(linkCfgs))
	emLinks := make([]*netem.Link, len(linkCfgs))
	for i, lc := range linkCfgs {
		link, err := netem.NewLink(eng, lc, rand.New(rand.NewSource(seed+int64(i)+1)),
			func(p []byte, _ time.Duration) { recv.HandleDatagram(p) })
		if err != nil {
			return ChaosResult{}, fmt.Errorf("bench: channel %d: %w", i, err)
		}
		if cfg.Obs != nil {
			link.Instrument(cfg.Obs, cfg.Trace, i)
		}
		links[i] = link
		emLinks[i] = link
	}

	tracker, err := remicss.NewHealthTracker(cfg.Health, cfg.Setup.N(), eng.Now, cfg.Obs, cfg.Trace)
	if err != nil {
		return ChaosResult{}, fmt.Errorf("bench: %w", err)
	}
	var opts []remicss.HealthOption
	if cfg.Resolve {
		if corr, ok := privacyCorrelation(cfg, set.N()); ok {
			opts = append(opts, remicss.ResolveCorrelated(set, corr, schedule.ObjectiveLoss))
		} else {
			opts = append(opts, remicss.Resolve(set, schedule.ObjectiveLoss))
		}
	}
	chooser, err := remicss.NewHealthChooser(cfg.Kappa, cfg.Mu, tracker, rand.New(rand.NewSource(seed+100)), opts...)
	if err != nil {
		return ChaosResult{}, fmt.Errorf("bench: %w", err)
	}
	rec := &minKChooser{inner: chooser}
	if cfg.Privacy != nil {
		rec.counts = make(map[core.Assignment]int64)
	}
	snd, err := remicss.NewSender(remicss.SenderConfig{
		Scheme:  scheme,
		Chooser: rec,
		Clock:   eng.Now,
		Metrics: cfg.Obs,
		Trace:   cfg.Trace,
		Health:  tracker,
	}, links)
	if err != nil {
		return ChaosResult{}, fmt.Errorf("bench: %w", err)
	}

	if err := cfg.Scenario.Apply(eng, emLinks, cfg.Trace); err != nil {
		return ChaosResult{}, fmt.Errorf("bench: %w", err)
	}

	offeredRate := PacketsPerSecond(cfg.OfferedMbps, cfg.PayloadBytes)
	interval := time.Duration(float64(time.Second) / offeredRate)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	payload := make([]byte, cfg.PayloadBytes)
	for i := range payload {
		payload[i] = byte(i)
	}
	var attempts int64
	var offer func()
	offer = func() {
		attempts++
		_ = snd.Send(payload)
		next := eng.Now() + interval
		if next <= cfg.Scenario.Duration {
			eng.At(next, offer)
		}
	}
	eng.Schedule(0, offer)
	eng.Run(cfg.Scenario.Duration)
	eng.RunUntilIdle()

	res := ChaosResult{
		Scenario:     cfg.Scenario.Name,
		Seed:         seed,
		Offered:      attempts,
		Delivered:    delivered,
		Floor:        cfg.Scenario.Floor,
		MinThreshold: rec.minK,
		KappaFloor:   int(math.Floor(cfg.Kappa)),
		Links:        make([]netem.LinkStats, len(emLinks)),
		FinalStates:  make([]string, cfg.Setup.N()),
	}
	for i, l := range emLinks {
		res.Links[i] = l.Stats()
	}
	for i := range res.FinalStates {
		res.FinalStates[i] = tracker.State(i).String()
	}
	if attempts > 0 {
		res.DeliveryRatio = float64(delivered) / float64(attempts)
	}
	if delivered > 0 {
		res.MeanDelay = delaySum / time.Duration(delivered)
	}
	res.FloorOK = res.DeliveryRatio >= res.Floor

	// The trace is the observability ground truth: cross-check the
	// chooser-side minimum against the symbol-scheduled events still held
	// in the ring, and pull the failover counters from the state stream.
	for _, ev := range cfg.Trace.Snapshot(nil) {
		switch ev.Kind {
		case obs.EventSymbolScheduled:
			if k := int(ev.Value >> 8); res.MinThreshold == 0 || k < res.MinThreshold {
				res.MinThreshold = k
			}
		case obs.EventChannelStateChanged:
			switch remicss.HealthState(ev.Value) {
			case remicss.HealthDown:
				res.Failovers++
			case remicss.HealthHealthy:
				res.Recoveries++
			}
		case obs.EventChannelProbe:
			res.Probes++
		case obs.EventFaultInjected:
			res.FaultsInjected++
		}
	}
	res.ThresholdOK = res.MinThreshold >= res.KappaFloor

	if cfg.Privacy != nil {
		rep, err := scorePrivacy(cfg, set, rec.counts, cfg.Trace)
		if err != nil {
			return ChaosResult{}, fmt.Errorf("bench: privacy scoring: %w", err)
		}
		res.Privacy = rep
	}
	return res, nil
}

// privacyCorrelation materializes the correlated model a ChaosConfig's
// privacy settings imply, for wiring into the chooser's re-solve path. ok
// is false when privacy scoring is off or no shared-risk groups exist.
func privacyCorrelation(cfg ChaosConfig, n int) (core.Correlation, bool) {
	if cfg.Privacy == nil {
		return core.Correlation{}, false
	}
	groups := cfg.Privacy.Groups
	if len(groups) == 0 {
		groups = chaos.SharedGroups(cfg.Scenario, n)
	}
	if len(groups) == 0 {
		return core.Correlation{}, false
	}
	rho := cfg.Privacy.Rho
	if rho == 0 {
		rho = DefaultPrivacyRho
	}
	var corr core.Correlation
	for _, m := range groups {
		corr.Groups = append(corr.Groups, core.RiskGroup{Mask: m, RiskRho: rho, LossRho: rho})
	}
	return corr, true
}
