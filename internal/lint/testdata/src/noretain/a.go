// Package noretain exercises the noretain analyzer: field, channel, pool,
// composite-literal, and closure retention of a Send/HandleDatagram
// argument, plus the suppressed and clean implementations.
package noretain

import "sync"

// sink retains datagrams every way the analyzer tracks.
type sink struct {
	last []byte
	ch   chan []byte
	pool sync.Pool
}

// Send matches the Link shape and retains its argument.
func (s *sink) Send(datagram []byte) bool {
	s.last = datagram // want `stores the datagram \(or a subslice\) into s\.last`
	alias := datagram[2:]
	s.last = alias           // want `stores the datagram \(or a subslice\) into s\.last`
	s.ch <- datagram         // want `sends the datagram into a channel`
	s.pool.Put(datagram[:4]) // want `puts the datagram into a sync.Pool`
	return true
}

// HandleDatagram captures the buffer in a closure that outlives the call.
func (s *sink) HandleDatagram(buf []byte) {
	go func() { // want `closure in HandleDatagram captures the datagram`
		s.last = buf
	}()
}

// record carries a payload slice.
type record struct{ payload []byte }

// keep is checked via the marker annotation and retains through a
// composite literal.
//
//remicss:noretain
func keep(buf []byte) record {
	return record{payload: buf} // want `stores the datagram into a composite literal`
}

// queueLink retains deliberately, with the justification written down.
type queueLink struct {
	q chan []byte
}

// Send enqueues the datagram for a consumer that owns it afterwards.
//
//lint:allow noretain fixture documents a transport that takes ownership of the buffer
func (l *queueLink) Send(datagram []byte) bool {
	l.q <- datagram
	return true
}

// copyLink copies before retaining, as the contract requires.
type copyLink struct {
	buf []byte
}

// Send copies the datagram into the link's own buffer.
func (l *copyLink) Send(datagram []byte) bool {
	view := datagram[:2]
	_ = view
	l.buf = append(l.buf[:0], datagram...)
	return len(l.buf) > 0
}
