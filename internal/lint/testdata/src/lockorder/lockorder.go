// Package lockorder is the golden fixture for the lock-acquisition graph
// analyzer: a direct two-lock cycle, a cycle mediated by a call into another
// package, a dynamic call under a held lock, and a self-deadlock through a
// helper, plus the negative cases the timeline model must not confuse.
package lockorder

import (
	"sync"

	"lockorder/dep"
)

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

// --- direct cycle: A.mu → B.mu in one function, B.mu → A.mu in another ---

func lockAB(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want `lock order cycle: B.mu acquired while A.mu is held`
	b.mu.Unlock()
}

func lockBA(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock() // want `lock order cycle: A.mu acquired while B.mu is held`
	a.mu.Unlock()
}

// --- cross-package cycle, one side mediated by a call summary ---

func chargeCallee(a *A, g *dep.Gauge) {
	a.mu.Lock()
	defer a.mu.Unlock()
	g.Bump() // want `lock order cycle: Gauge.Mu acquired via call to Bump while A.mu is held`
}

func reverseOrder(a *A, g *dep.Gauge) {
	g.Mu.Lock()
	defer g.Mu.Unlock()
	a.mu.Lock() // want `lock order cycle: A.mu acquired while Gauge.Mu is held`
	a.mu.Unlock()
}

// --- dynamic calls under a held lock ---

func callback(a *A, f func()) {
	a.mu.Lock()
	f() // want `dynamic call f while holding A.mu`
	a.mu.Unlock()
}

func callbackAllowed(a *A, f func()) {
	a.mu.Lock()
	f() //lint:allow lockorder fixture exercises a sanctioned callback under lock
	a.mu.Unlock()
}

// --- self-deadlock through a helper ---

func lockA(a *A) {
	a.mu.Lock()
	a.mu.Unlock()
}

func double(a *A) {
	a.mu.Lock()
	defer a.mu.Unlock()
	lockA(a) // want `call to lockA acquires A.mu, which is already held here: self-deadlock`
}

// --- negative: a spawned goroutine is its own timeline ---

func spawn(a *A, b *B) {
	a.mu.Lock()
	go func() {
		b.mu.Lock()
		b.mu.Unlock()
	}()
	a.mu.Unlock()
}
