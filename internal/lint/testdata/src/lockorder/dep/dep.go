// Package dep supplies a lock-bearing type from another package so the
// fixture can prove the acquisition graph crosses package boundaries.
package dep

import "sync"

// Gauge exposes its mutex so callers in other packages can acquire it
// directly, and Bump acquires it internally — two routes into the same
// lock class.
type Gauge struct {
	Mu sync.Mutex
	n  int
}

func (g *Gauge) Bump() {
	g.Mu.Lock()
	g.n++
	g.Mu.Unlock()
}
