// Package readonlyinput exercises the readonly-input analyzer: element
// writes, copy/append with the input as destination, ByteOrder Put* calls,
// alias tracking through subslices, the marker annotation, the suppression
// directive, and a clean decoder.
package readonlyinput

import "encoding/binary"

// Unmarshal writes through its input every way the analyzer tracks.
func Unmarshal(data []byte) int {
	data[0] = 0 // want `Unmarshal writes to its input slice`
	view := data[4:8]
	view[1] = 2              // want `Unmarshal writes to its input slice`
	copy(data[2:], view)     // want `passes its input slice to copy as the destination`
	grown := append(data, 1) // want `passes its input slice to append as the destination`
	_ = grown
	binary.BigEndian.PutUint16(data[0:2], 7) // want `writes to its input slice via PutUint16`
	return len(data)
}

// parseFrame is checked via the marker annotation.
//
//remicss:readonly
func parseFrame(frame []byte) byte {
	frame[0] = 1 // want `parseFrame writes to its input slice`
	return frame[0]
}

// UnmarshalScrub mutates in place deliberately, with the justification
// written down.
func UnmarshalScrub(data []byte) {
	//lint:allow readonly-input fixture documents an in-place decoder that owns its buffer
	data[0] = 0
}

// UnmarshalClean decodes without writing, as the contract requires.
func UnmarshalClean(data []byte) uint16 {
	scratch := make([]byte, 2)
	copy(scratch, data[:2])
	return binary.BigEndian.Uint16(scratch)
}
