// Package directive holds malformed //lint:allow directives; the framework
// must report each one instead of silently suppressing. Expectations are
// asserted programmatically (TestDirectiveValidation), not via want
// comments, because the directive under test occupies the comment slot.
package directive

// noReason omits the mandatory justification.
//
//remicss:noalloc
func noReason(n int) []byte {
	//lint:allow noalloc
	return make([]byte, n)
}

// unknownAnalyzer names a check that does not exist.
func unknownAnalyzer() {
	//lint:allow nosuchcheck because it does not exist
	_ = 0
}

// noAnalyzer names nothing at all.
func noAnalyzer() {
	//lint:allow
	_ = 0
}
