// b.go holds the suppressed and clean halves of the insecure-rand fixture.
package insecurerand

import (
	crand "crypto/rand"

	mrand "math/rand" //lint:allow insecure-rand fixture documents a justified deterministic import
)

// simulate uses seeded randomness deliberately and says so.
func simulate(seed int64) {
	rng := mrand.New(mrand.NewSource(seed))
	//lint:allow insecure-rand deterministic simulation fixture
	consume(rng)
}

// clean draws from crypto/rand, as the secrecy contract requires.
func clean() {
	consume(crand.Reader)
}
