// Package insecurerand exercises the insecure-rand analyzer: both the
// secret-package import ban and the flow of math/rand values into
// io.Reader-shaped randomness slots.
package insecurerand

import (
	"io"
	"math/rand" // want `import of math/rand in secret-bearing package`
)

// consume stands in for a sharing-scheme constructor drawing entropy.
func consume(r io.Reader) { _ = r }

// source is a struct with a Reader-shaped randomness slot.
type source struct {
	rng io.Reader
}

// flows routes a seeded rng into Reader slots every way the analyzer
// tracks: call argument, plain assignment, composite literal, and return.
func flows(seed int64) io.Reader {
	rng := rand.New(rand.NewSource(seed))
	consume(rng) // want `math/rand value .* flows into randomness slot`
	var r io.Reader
	r = rng // want `math/rand value .* flows into randomness slot`
	_ = r
	s := source{rng: rng} // want `math/rand value .* flows into randomness slot`
	_ = s
	return rng // want `math/rand value .* flows into randomness slot`
}
