// Package noalloc exercises the noalloc analyzer: every allocating
// construct it flags, the self-append exemption, the //lint:allow escape
// hatch, and a clean zero-allocation function.
package noalloc

// point is a value type used by the escape case.
type point struct{ x, y int }

// hot collects the core allocating constructs.
//
//remicss:noalloc
func hot(dst, src []byte, n int) []byte {
	buf := make([]byte, n) // want `make in noalloc function hot allocates`
	_ = buf
	p := new(int) // want `new in noalloc function hot allocates`
	_ = p
	s := []int{1, 2, 3} // want `slice literal in noalloc function hot allocates`
	_ = s
	m := map[int]int{} // want `map literal in noalloc function hot allocates`
	_ = m
	f := func() {} // want `function literal in noalloc function hot`
	_ = f
	dst = append(dst[:0], src...)
	other := append(src, 0) // want `append in noalloc function hot grows a buffer`
	_ = other
	return dst
}

// spawn starts a goroutine from a noalloc context.
//
//remicss:noalloc
func spawn() {
	go spin() // want `go statement in noalloc function spawn`
}

// spin is the goroutine body for spawn.
func spin() {}

// strcat exercises string concatenation and string/slice conversions.
//
//remicss:noalloc
func strcat(a, b string) []byte {
	c := a + b // want `string concatenation in noalloc function strcat`
	_ = c
	return []byte(a) // want `string/slice conversion in noalloc function strcat`
}

// box returns a non-pointer value through an interface result.
//
//remicss:noalloc
func box(x int) any {
	return x // want `boxed into interface`
}

// escape returns a pointer to a composite literal.
//
//remicss:noalloc
func escape() *point {
	return &point{} // want `&composite literal in noalloc function escape`
}

// grow documents an amortized growth path with a justified allow.
//
//remicss:noalloc
func grow(dst []byte, n int) []byte {
	if cap(dst) < n {
		dst = make([]byte, n) //lint:allow noalloc amortized growth path; steady state reuses dst
	}
	return dst[:n]
}

// clean copies between caller-owned buffers without allocating.
//
//remicss:noalloc
func clean(dst, src []byte) int {
	return copy(dst, src)
}
