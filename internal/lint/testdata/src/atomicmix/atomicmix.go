// Package atomicmix is the golden fixture for the mixed-access-discipline
// analyzer: any field or package variable touched through sync/atomic
// anywhere must be touched through sync/atomic everywhere.
package atomicmix

import "sync/atomic"

type counter struct {
	n  uint64
	ok uint64
}

func (c *counter) inc() {
	atomic.AddUint64(&c.n, 1)
}

func (c *counter) read() uint64 {
	return c.n // want `n is accessed with sync/atomic at .* but plainly here`
}

func (c *counter) loadOK() uint64 {
	return atomic.LoadUint64(&c.ok)
}

func (c *counter) reset() {
	c.ok = 0 // want `ok is accessed with sync/atomic at .* but plainly here`
}

func newCounter() *counter {
	c := &counter{}
	c.ok = 1 //lint:allow atomicmix initialization precedes publication of the pointer
	return c
}

var hits uint64

func bump() {
	atomic.AddUint64(&hits, 1)
}

func snapshot() uint64 {
	return hits // want `hits is accessed with sync/atomic at .* but plainly here`
}

// typedCounter is the negative case: typed atomics carry the discipline in
// the type system, so their fields never mix.
type typedCounter struct {
	n atomic.Uint64
}

func (t *typedCounter) inc() uint64 {
	return t.n.Add(1)
}

func stale() int {
	v := 1 //lint:allow atomicmix nothing here mixes disciplines // want `lint:allow atomicmix directive suppresses no diagnostic`
	return v
}
