// Package mutexguard exercises the mutexguard analyzer: unlocked and
// access-before-lock violations, the locked and callers-hold-mu clean
// cases, and annotation validation.
package mutexguard

import "sync"

// counter has a field guarded by its mutex.
type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// bad reads n without ever locking.
func (c *counter) bad() int {
	return c.n // want `field n is guarded by mu but bad accesses it without locking`
}

// early touches n before taking the lock.
func (c *counter) early() int {
	v := c.n // want `field n is guarded by mu but early accesses it without locking`
	c.mu.Lock()
	defer c.mu.Unlock()
	return v + c.n
}

// good locks before every access.
func (c *counter) good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	return c.n
}

// helper runs with the lock already held by its callers.
//
//lint:allow mutexguard callers hold mu
func (c *counter) helper() int {
	return c.n
}

// typo carries an annotation naming a field the struct does not have.
type typo struct {
	n int // guarded by mux; want `annotated 'guarded by mux' but struct typo has no field of that name`
}

// use keeps the fixture types and methods referenced.
func use() int {
	var c counter
	var t typo
	return c.bad() + c.early() + c.good() + c.helper() + t.n
}
