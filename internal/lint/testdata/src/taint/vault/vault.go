// Package vault is the fixture's secret-bearing package: the annotated field
// lives here, one package removed from the code that leaks it, so every
// finding in the parent package proves cross-package propagation.
package vault

type Box struct {
	Plain []byte //remicss:secret
	Tag   int
}

// Export hands out the raw secret bytes; its summary must mark the result as
// secret-derived so callers in other packages inherit the taint.
func (b *Box) Export() []byte {
	return b.Plain
}

// Label is clean: the projection barrier keeps unannotated scalar fields of
// a secret-bearing struct out of the taint set.
func (b *Box) Label() int {
	return b.Tag
}
