// Package taint is the golden fixture for the interprocedural secret-taint
// analyzer. The annotated source lives one package down in taint/vault; every
// finding here therefore proves propagation across a package boundary, and
// the trace-event case proves it through two call hops on top.
package taint

import (
	"crypto/subtle"
	"fmt"

	"remicss/internal/obs"

	"taint/vault"
)

// --- the seeded leak: secret bytes into a trace event payload, two hops ---

// emit is the inner hop: its second parameter flows into the obs trace sink,
// so its summary carries sinks[v] = "obs trace event".
func emit(tr *obs.Trace, v int64) {
	tr.Record(obs.EventSymbolDelivered, 0, 0, 0, v)
}

// probe is the cross-package hop: its result derives from vault.Box's
// annotated field through Export's summary.
func probe(b *vault.Box) int64 {
	return int64(b.Export()[0])
}

func relay(tr *obs.Trace, b *vault.Box) {
	emit(tr, probe(b)) // want `secret value .* reaches emit → obs trace event`
}

// --- direct sinks ---

func describe(b *vault.Box) error {
	return fmt.Errorf("box contents %x", b.Export()) // want `secret value .* reaches fmt.Errorf`
}

// describeTag is clean: Label projects an unannotated scalar field, which
// the projection barrier keeps out of the taint set.
func describeTag(b *vault.Box) error {
	return fmt.Errorf("box tag %d", b.Label())
}

// --- summary fixed-point convergence: mutually recursive propagators ---

func bounce(n int, b []byte) []byte {
	if n == 0 {
		return b
	}
	return rebound(n-1, b)
}

func rebound(n int, b []byte) []byte {
	return bounce(n-1, b)
}

func recurse(b *vault.Box) {
	fmt.Println(bounce(3, b.Export())) // want `secret value .* reaches fmt.Println`
}

// --- escapes into retained structures ---

type cache struct {
	last []byte
	held []byte //remicss:secret
}

func (c *cache) remember(b *vault.Box) {
	c.last = b.Export() // want `escapes into unannotated field taint.cache.last`
	c.held = b.Export() // clean: the destination is inside the secret perimeter
}

// fill writes secret bytes through its parameter via a reslice alias, so its
// summary records paramOut[dst]; keepFilled then retains the filled buffer.
func fill(dst []byte, b *vault.Box) {
	buf := dst[2:]
	copy(buf, b.Export())
}

type sink2 struct {
	kept []byte
}

func keepFilled(s *sink2, b *vault.Box) {
	tmp := make([]byte, 16)
	fill(tmp, b)
	s.kept = tmp // want `escapes into unannotated field taint.sink2.kept`
}

// --- sanitizer patterns ---

// zeroize scrubs a buffer in place.
//
//remicss:sanitizer
func zeroize(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

func scrubbed(b *vault.Box) string {
	tmp := make([]byte, 4)
	copy(tmp, b.Export())
	zeroize(tmp)
	return fmt.Sprintf("%x", tmp) // clean: tmp was zeroized before formatting
}

// matches is clean: crypto/subtle declassifies, a comparison outcome is not
// a byte leak.
func matches(b *vault.Box, guess []byte) bool {
	return subtle.ConstantTimeCompare(b.Export(), guess) == 1
}

// --- suppression ---

func debugDump(b *vault.Box) {
	fmt.Printf("vault: %x\n", b.Export()) //lint:allow taint fixture exercises suppressing a deliberate debug dump
}
