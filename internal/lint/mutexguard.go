package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MutexGuardAnalyzer enforces "guarded by <mu>" field annotations: a struct
// field carrying the annotation (in its doc or trailing comment) may only
// be read or written after the named sibling mutex has been locked earlier
// in the same function.
//
// The check is deliberately local and flow-insensitive: "locked on all
// paths" is approximated by "a <recv>.<mu>.Lock() or RLock() call appears
// textually before the access in the same function body" (the
// lock-at-entry / defer-unlock discipline used throughout this repository
// satisfies it trivially). Internal helpers that run with the lock already
// held by their callers must say so with //lint:allow mutexguard <reason>
// in their doc comment, which both suppresses the diagnostic and documents
// the calling convention.
func MutexGuardAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "mutexguard",
		Doc:  "fields annotated 'guarded by mu' must only be accessed under the guarding mutex",
	}
	a.Run = func(pass *Pass) {
		guards := collectGuards(pass)
		if len(guards) == 0 {
			return
		}
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkGuardedAccesses(pass, fd, guards)
			}
		}
	}
	return a
}

// collectGuards maps each annotated field object to the mutex field object
// that guards it, reporting annotations that name a nonexistent sibling.
func collectGuards(pass *Pass) map[types.Object]types.Object {
	guards := make(map[types.Object]types.Object)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			// First index every field object by name, then resolve the
			// guard annotations against that index.
			byName := make(map[string]types.Object)
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						byName[name.Name] = obj
					}
				}
			}
			for _, field := range st.Fields.List {
				muName := guardAnnotation(field)
				if muName == "" {
					continue
				}
				mu, ok := byName[muName]
				if !ok {
					pass.Reportf(field.Pos(), "field is annotated 'guarded by %s' but struct %s has no field of that name", muName, ts.Name.Name)
					continue
				}
				for _, name := range field.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						guards[obj] = mu
					}
				}
			}
			return true
		})
	}
	return guards
}

// checkGuardedAccesses flags guarded-field selections in fd that are not
// preceded by a lock of the guarding mutex.
func checkGuardedAccesses(pass *Pass, fd *ast.FuncDecl, guards map[types.Object]types.Object) {
	// locks[mu] is the earliest position at which mu is locked in this
	// function (including inside nested closures — the approximation
	// already gives up path sensitivity).
	locks := make(map[types.Object]token.Pos)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		muSel, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if selection, ok := pass.Info.Selections[muSel]; ok && selection.Kind() == types.FieldVal {
			mu := selection.Obj()
			if prev, seen := locks[mu]; !seen || call.Pos() < prev {
				locks[mu] = call.Pos()
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pass.Info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		field := selection.Obj()
		mu, guarded := guards[field]
		if !guarded {
			return true
		}
		lockPos, locked := locks[mu]
		if !locked || sel.Pos() < lockPos {
			pass.Reportf(sel.Pos(),
				"field %s is guarded by %s but %s accesses it without locking (lock first, or annotate the function //lint:allow mutexguard <reason> if callers hold the lock)",
				field.Name(), mu.Name(), fd.Name.Name)
		}
		return true
	})
}
