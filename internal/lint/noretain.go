package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoRetainAnalyzer enforces the Link "no datagram retention" contract: the
// sender reuses one marshal buffer for every share, and the transport
// readers reuse one receive buffer per socket, so an implementation that
// stores the datagram slice (or a subslice of it) corrupts later traffic.
//
// Checked functions are the contract's implementations, identified by
// shape:
//
//   - methods named Send with signature func([]byte) bool (the Link
//     interface), and
//   - functions or methods named HandleDatagram whose first parameter is
//     []byte (the receiver-ingest side of ServeConcurrent), and
//   - any function annotated //remicss:noretain with a []byte parameter.
//
// Within a checked function the analyzer tracks local aliases of the
// parameter (x := datagram, y := x[2:8], append(datagram, ...)) and reports
// any store of an alias into a struct field, package-level variable, map,
// slice element, channel, sync.Pool, or composite literal, and any closure
// that captures an alias (it may outlive the call). Copying the bytes out
// (copy, append into a buffer the function owns) and passing the slice to
// another function for the duration of the call are both allowed; aliases
// laundered through opaque calls are a documented blind spot of the local
// analysis.
func NoRetainAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "noretain",
		Doc:  "Link.Send and datagram-ingest implementations must not retain their []byte argument",
	}
	a.Run = func(pass *Pass) {
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				param := noRetainParam(pass, fd)
				if param == nil {
					continue
				}
				checkNoRetain(pass, fd, param)
			}
		}
	}
	return a
}

// noRetainParam returns the tracked []byte parameter object when fd matches
// one of the no-retention contract shapes, nil otherwise.
func noRetainParam(pass *Pass, fd *ast.FuncDecl) types.Object {
	sig, ok := pass.TypeOf(fd.Name).(*types.Signature)
	if !ok {
		return nil
	}
	firstByteSlice := func() types.Object {
		params := sig.Params()
		for i := 0; i < params.Len(); i++ {
			if isByteSlice(params.At(i).Type()) {
				return params.At(i)
			}
		}
		return nil
	}
	switch {
	case fd.Recv != nil && fd.Name.Name == "Send" &&
		sig.Params().Len() == 1 && isByteSlice(sig.Params().At(0).Type()) &&
		sig.Results().Len() == 1 && isBool(sig.Results().At(0).Type()):
		return sig.Params().At(0)
	case fd.Name.Name == "HandleDatagram" && sig.Params().Len() >= 1 && isByteSlice(sig.Params().At(0).Type()):
		return sig.Params().At(0)
	case hasMarker(fd.Doc, "noretain"):
		return firstByteSlice()
	}
	return nil
}

// aliasSet tracks which local objects currently alias the parameter slice.
type aliasSet map[types.Object]bool

// aliasExpr reports whether e evaluates to a slice aliasing the tracked
// parameter: the parameter itself, a tracked local, a subslice of either,
// or an append to one (append may return the same backing array).
func (s aliasSet) aliasExpr(pass *Pass, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return s[pass.Info.Uses[e]]
	case *ast.ParenExpr:
		return s.aliasExpr(pass, e.X)
	case *ast.SliceExpr:
		return s.aliasExpr(pass, e.X)
	case *ast.CallExpr:
		if isBuiltin(pass, e.Fun, "append") && len(e.Args) > 0 {
			return s.aliasExpr(pass, e.Args[0])
		}
	}
	return false
}

// checkNoRetain walks fd's body in source order, maintaining the alias set
// and reporting escapes.
func checkNoRetain(pass *Pass, fd *ast.FuncDecl, param types.Object) {
	aliases := aliasSet{param: true}
	pkgScope := pass.Pkg.Scope()
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i := range n.Lhs {
				rhsAlias := aliases.aliasExpr(pass, n.Rhs[i])
				switch lhs := n.Lhs[i].(type) {
				case *ast.Ident:
					var obj types.Object
					if n.Tok == token.DEFINE {
						obj = pass.Info.Defs[lhs]
					} else {
						obj = pass.Info.Uses[lhs]
					}
					if obj == nil {
						continue
					}
					if obj.Parent() == pkgScope {
						if rhsAlias {
							pass.Reportf(n.Rhs[i].Pos(), "%s stores the datagram (or a subslice) into package-level variable %s: the no-retention contract requires copying first", fd.Name.Name, lhs.Name)
						}
						continue
					}
					if rhsAlias {
						aliases[obj] = true
					} else {
						delete(aliases, obj)
					}
				default:
					if rhsAlias {
						pass.Reportf(n.Rhs[i].Pos(), "%s stores the datagram (or a subslice) into %s: the no-retention contract requires copying first", fd.Name.Name, types.ExprString(n.Lhs[i]))
					}
				}
			}
		case *ast.SendStmt:
			if aliases.aliasExpr(pass, n.Value) {
				pass.Reportf(n.Value.Pos(), "%s sends the datagram into a channel, retaining it past the call: copy first", fd.Name.Name)
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Put" && isSyncPool(pass.TypeOf(sel.X)) {
				for _, arg := range n.Args {
					if aliases.aliasExpr(pass, arg) {
						pass.Reportf(arg.Pos(), "%s puts the datagram into a sync.Pool, retaining it past the call: copy first", fd.Name.Name)
					}
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				v := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if aliases.aliasExpr(pass, v) {
					pass.Reportf(v.Pos(), "%s stores the datagram into a composite literal, which may outlive the call: copy first", fd.Name.Name)
				}
			}
		case *ast.FuncLit:
			if capturesAlias(pass, n, aliases) {
				pass.Reportf(n.Pos(), "closure in %s captures the datagram and may run after Send returns: copy first", fd.Name.Name)
				return false
			}
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

// capturesAlias reports whether the function literal references any tracked
// alias of the parameter.
func capturesAlias(pass *Pass, fn *ast.FuncLit, aliases aliasSet) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && aliases[pass.Info.Uses[id]] {
			found = true
		}
		return !found
	})
	return found
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func isBool(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Bool
}

// isSyncPool reports whether t is sync.Pool or *sync.Pool.
func isSyncPool(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Pool"
}
