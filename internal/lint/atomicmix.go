package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AtomicMixAnalyzer returns the module-wide atomic/plain access mixing
// analyzer: a variable or field whose address is passed to a sync/atomic
// operation anywhere in the module may never be read or written plainly
// anywhere else. Mixing the two access disciplines is the racy pattern the
// schedule cache's lock-free read path must never reintroduce; the typed
// atomics (atomic.Uint64, atomic.Pointer) the module prefers make the
// mistake impossible, so this analyzer exists to police the places where
// old-style atomic calls on plain fields creep back in.
//
// Initialization before publication is the one legitimate mixed pattern;
// such sites carry a //lint:allow atomicmix directive with the publication
// argument spelled out.
func AtomicMixAnalyzer() *Analyzer {
	return &Analyzer{
		Name:      "atomicmix",
		Doc:       "a field accessed with sync/atomic anywhere must be accessed atomically everywhere",
		RunModule: runAtomicMix,
	}
}

type atomicUse struct {
	pkg *Package
	pos token.Pos
}

func runAtomicMix(mp *ModulePass) {
	// Pass 1: every object whose address feeds a sync/atomic call, plus the
	// positions of those sanctioned uses.
	atomicObjs := make(map[types.Object]atomicUse) // object → first atomic site (witness)
	sanctioned := make(map[token.Pos]bool)         // identifier positions inside atomic call args
	for _, pkg := range mp.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := staticCallee(pkg.Info, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
					return true
				}
				if funcSig(fn).Recv() != nil {
					// Methods on typed atomics (atomic.Uint64 etc.) carry
					// the discipline in the type; nothing to police.
					return true
				}
				for _, arg := range call.Args {
					un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					obj, id := addressedObject(pkg, un.X)
					if obj == nil {
						continue
					}
					if _, seen := atomicObjs[obj]; !seen {
						atomicObjs[obj] = atomicUse{pkg: pkg, pos: id.Pos()}
					}
					sanctioned[id.Pos()] = true
				}
				return true
			})
		}
	}
	if len(atomicObjs) == 0 {
		return
	}

	// Pass 2: any other appearance of those objects is a plain access.
	type finding struct {
		pkg *Package
		pos token.Pos
		obj types.Object
	}
	var findings []finding
	for _, pkg := range mp.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				var id *ast.Ident
				var obj types.Object
				switch n := n.(type) {
				case *ast.SelectorExpr:
					if sel, ok := pkg.Info.Selections[n]; ok && sel.Kind() == types.FieldVal {
						obj, id = sel.Obj(), n.Sel
					}
				case *ast.Ident:
					if v, ok := pkg.Info.Uses[n].(*types.Var); ok && !v.IsField() {
						obj, id = v, n
					}
				}
				if obj == nil {
					return true
				}
				if _, tracked := atomicObjs[obj]; !tracked || sanctioned[id.Pos()] {
					return true
				}
				findings = append(findings, finding{pkg: pkg, pos: id.Pos(), obj: obj})
				return true
			})
		}
	}
	sort.Slice(findings, func(i, j int) bool { return findings[i].pos < findings[j].pos })
	for _, f := range findings {
		use := atomicObjs[f.obj]
		at := use.pkg.Fset.Position(use.pos)
		mp.Reportf(f.pkg.Fset, f.pos,
			"%s is accessed with sync/atomic at %s:%d but plainly here; every access must use the atomic API",
			f.obj.Name(), shortPath(at.Filename), at.Line)
	}
}

// addressedObject resolves &expr to the field or variable object whose
// storage the atomic call operates on, along with the identifier naming it.
// Index expressions resolve to the container variable: atomics on one
// element of a field's array bind the whole field to the discipline.
func addressedObject(pkg *Package, e ast.Expr) (types.Object, *ast.Ident) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = x.X
			continue
		case *ast.SelectorExpr:
			if sel, ok := pkg.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
				return sel.Obj(), x.Sel
			}
			if v, ok := pkg.Info.Uses[x.Sel].(*types.Var); ok {
				return v, x.Sel
			}
			return nil, nil
		case *ast.Ident:
			if v, ok := pkg.Info.Uses[x].(*types.Var); ok {
				return v, x
			}
			return nil, nil
		default:
			return nil, nil
		}
	}
}

// shortPath trims a filename to its last two path elements for diagnostics.
func shortPath(path string) string {
	parts := strings.Split(path, "/")
	if len(parts) <= 2 {
		return path
	}
	return strings.Join(parts[len(parts)-2:], "/")
}
