package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrderAnalyzer returns the module-wide lock-acquisition-order analyzer.
// It abstracts every sync.Mutex/RWMutex in the module into a lock class —
// (owning struct type, field name) for mutex fields, with an array of
// mutexes like the sender's per-link linkMu collapsing to one class, or
// (package, var name) for package-level mutexes — and builds the directed
// graph of "class B acquired while class A is held". An acquisition is
// charged both for a literal Lock call inside the held region and for a
// static call to a module function whose transitive acquire set (computed by
// fixed point over the call graph) contains the class.
//
// It reports three things: cycles in the class graph (potential deadlocks),
// calls that re-acquire a class already held (self-deadlock), and dynamic
// calls (interface methods, function values) performed while a lock is held
// — code the analysis cannot see into and which may therefore block or
// re-enter arbitrarily. The last is the finding to suppress, with a reason,
// at the module's deliberate callback-under-lock sites.
func LockOrderAnalyzer() *Analyzer {
	return &Analyzer{
		Name:      "lockorder",
		Doc:       "lock acquisition order must be acyclic, and code must not call into unknown code while holding a lock",
		RunModule: runLockOrder,
	}
}

// lockClass names one abstract lock. All mutexes reached through the same
// struct field (across all instances, including array/slice elements) are
// one class.
type lockClass struct {
	owner string // named type or package owning the mutex
	field string // field or variable name
}

func (c lockClass) String() string { return c.owner + "." + c.field }

// lockEvent is one Lock/Unlock-family call, in source order.
type lockEvent struct {
	pos      token.Pos
	class    lockClass
	acquire  bool // Lock/RLock/TryLock vs Unlock/RUnlock
	deferred bool
}

// lockCall is a non-mutex call, with what lockorder needs to know about it.
type lockCall struct {
	pos     token.Pos
	fn      *types.Func // nil for dynamic dispatch
	dynamic bool
	desc    string // display form of the callee for diagnostics
}

// lockTimeline is one linear execution context: a function body, or a
// function literal's body analyzed separately so that a goroutine's or
// callback's lock operations are not misattributed to the frame that merely
// defines the closure. concurrent marks go-statement closures, whose
// acquisitions are not charged to the enclosing function's summary.
type lockTimeline struct {
	events     []lockEvent
	calls      []lockCall
	concurrent bool
}

// lockEdge is one observed "to acquired while from is held" ordering.
type lockEdge struct {
	from, to lockClass
	pos      token.Pos
	pkg      *Package
	how      string // "" for a direct Lock, else the call chain charging it
}

func runLockOrder(mp *ModulePass) {
	idx := indexModule(mp.Pkgs)

	timelines := make(map[*types.Func][]lockTimeline)
	for _, fn := range idx.order {
		di := idx.funcs[fn]
		timelines[fn] = collectLockFacts(di.pkg, di.decl)
	}

	// Transitive acquire sets by fixed point: a function acquires what it
	// locks directly (including in deferred closures, which run within the
	// call) plus whatever its static module callees acquire.
	acquires := make(map[*types.Func]map[lockClass]bool)
	for _, fn := range idx.order {
		acquires[fn] = make(map[lockClass]bool)
		for _, tl := range timelines[fn] {
			if tl.concurrent {
				continue
			}
			for _, e := range tl.events {
				if e.acquire {
					acquires[fn][e.class] = true
				}
			}
		}
	}
	for {
		changed := false
		for _, fn := range idx.order {
			for _, tl := range timelines[fn] {
				if tl.concurrent {
					continue
				}
				for _, c := range tl.calls {
					if c.fn == nil {
						continue
					}
					for cls := range acquires[c.fn] {
						if !acquires[fn][cls] {
							acquires[fn][cls] = true
							changed = true
						}
					}
				}
			}
		}
		if !changed {
			break
		}
	}

	var edges []lockEdge
	for _, fn := range idx.order {
		di := idx.funcs[fn]
		for _, tl := range timelines[fn] {
			edges = append(edges, simulateTimeline(mp, di.pkg, tl, acquires)...)
		}
	}
	reportLockCycles(mp, edges)
}

// simulateTimeline walks one timeline in source order tracking the held
// multiset, reporting held dynamic calls and self-deadlocks, and returning
// the ordering edges it witnesses.
func simulateTimeline(mp *ModulePass, pkg *Package, tl lockTimeline, acquires map[*types.Func]map[lockClass]bool) []lockEdge {
	merged := make([]any, 0, len(tl.events)+len(tl.calls))
	for _, e := range tl.events {
		merged = append(merged, e)
	}
	for _, c := range tl.calls {
		merged = append(merged, c)
	}
	sort.SliceStable(merged, func(i, j int) bool { return lockItemPos(merged[i]) < lockItemPos(merged[j]) })

	var edges []lockEdge
	held := make(map[lockClass]int)
	var heldOrder []lockClass
	for _, item := range merged {
		switch it := item.(type) {
		case lockEvent:
			if !it.acquire {
				// A deferred unlock keeps the lock held for the rest of the
				// walk, matching its real extent.
				if !it.deferred && held[it.class] > 0 {
					held[it.class]--
					if held[it.class] == 0 {
						heldOrder = removeClass(heldOrder, it.class)
					}
				}
				continue
			}
			for cls, n := range held {
				if n > 0 && cls != it.class {
					edges = append(edges, lockEdge{from: cls, to: it.class, pos: it.pos, pkg: pkg})
				}
			}
			held[it.class]++
			if held[it.class] == 1 {
				heldOrder = append(heldOrder, it.class)
			}
		case lockCall:
			if len(heldOrder) == 0 {
				continue
			}
			if it.dynamic {
				mp.Reportf(pkg.Fset, it.pos,
					"dynamic call %s while holding %s; the analysis cannot rule out blocking or lock re-entry in the callee",
					it.desc, describeHeld(heldOrder))
				continue
			}
			for cls := range acquires[it.fn] {
				for held2, n := range held {
					if n == 0 {
						continue
					}
					if held2 == cls {
						mp.Reportf(pkg.Fset, it.pos,
							"call to %s acquires %s, which is already held here: self-deadlock",
							it.fn.Name(), cls)
						continue
					}
					edges = append(edges, lockEdge{
						from: held2, to: cls, pos: it.pos, pkg: pkg,
						how: fmt.Sprintf("via call to %s", it.fn.Name()),
					})
				}
			}
		}
	}
	return edges
}

func lockItemPos(it any) token.Pos {
	switch v := it.(type) {
	case lockEvent:
		return v.pos
	case lockCall:
		return v.pos
	}
	return token.NoPos
}

func removeClass(order []lockClass, c lockClass) []lockClass {
	out := order[:0]
	for _, x := range order {
		if x != c {
			out = append(out, x)
		}
	}
	return out
}

func describeHeld(order []lockClass) string {
	names := make([]string, len(order))
	for i, c := range order {
		names[i] = c.String()
	}
	return strings.Join(names, ", ")
}

// reportLockCycles finds edges that participate in a cycle of the class
// graph and reports each witnessing site once.
func reportLockCycles(mp *ModulePass, edges []lockEdge) {
	adj := make(map[lockClass]map[lockClass]bool)
	for _, e := range edges {
		if adj[e.from] == nil {
			adj[e.from] = make(map[lockClass]bool)
		}
		adj[e.from][e.to] = true
	}
	// Cheap reachability suffices at module scale: edge u→v is in a cycle
	// iff u is reachable from v.
	reaches := func(from, to lockClass) bool {
		seen := map[lockClass]bool{from: true}
		stack := []lockClass{from}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if n == to {
				return true
			}
			for next := range adj[n] {
				if !seen[next] {
					seen[next] = true
					stack = append(stack, next)
				}
			}
		}
		return false
	}
	seenSite := make(map[string]bool)
	for _, e := range edges {
		if !reaches(e.to, e.from) {
			continue
		}
		how := e.how
		if how != "" {
			how = " " + how
		}
		key := fmt.Sprintf("%d:%s:%s", e.pos, e.from, e.to)
		if seenSite[key] {
			continue
		}
		seenSite[key] = true
		mp.Reportf(e.pkg.Fset, e.pos,
			"lock order cycle: %s acquired%s while %s is held, but the reverse order also occurs in the module",
			e.to, how, e.from)
	}
}

// collectLockFacts extracts the timelines of decl: its own body, plus one
// per function literal (deferred closures stay non-concurrent because they
// run within the call; go-statement closures are marked concurrent).
func collectLockFacts(pkg *Package, decl *ast.FuncDecl) []lockTimeline {
	var timelines []lockTimeline
	var walk func(root ast.Node, tl *lockTimeline)
	newTimeline := func(body *ast.BlockStmt, concurrent bool) {
		tl := lockTimeline{concurrent: concurrent}
		walk(body, &tl)
		timelines = append(timelines, tl)
	}
	walk = func(root ast.Node, tl *lockTimeline) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
					newTimeline(lit.Body, true)
				}
				// The spawned call itself runs concurrently: its acquires
				// are not charged here. Arguments are evaluated in this
				// frame, so walk them.
				for _, a := range n.Call.Args {
					walk(a, tl)
				}
				return false
			case *ast.DeferStmt:
				if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
					newTimeline(lit.Body, false)
				} else {
					visitLockCall(pkg, n.Call, true, tl)
				}
				for _, a := range n.Call.Args {
					walk(a, tl)
				}
				return false
			case *ast.FuncLit:
				newTimeline(n.Body, false)
				return false
			case *ast.CallExpr:
				if _, ok := ast.Unparen(n.Fun).(*ast.FuncLit); !ok {
					visitLockCall(pkg, n, false, tl)
				}
				return true
			}
			return true
		})
	}
	rootTl := lockTimeline{}
	walk(decl.Body, &rootTl)
	timelines = append([]lockTimeline{rootTl}, timelines...)
	// Re-sort events and calls: nested walks may append out of order.
	for i := range timelines {
		tl := &timelines[i]
		sort.SliceStable(tl.events, func(a, b int) bool { return tl.events[a].pos < tl.events[b].pos })
		sort.SliceStable(tl.calls, func(a, b int) bool { return tl.calls[a].pos < tl.calls[b].pos })
	}
	return timelines
}

// visitLockCall classifies one call as a mutex operation, a static call, or
// a dynamic call, and records it on the timeline.
func visitLockCall(pkg *Package, call *ast.CallExpr, deferred bool, tl *lockTimeline) {
	kind, fn, _ := classifyCall(pkg.Info, call)
	switch kind {
	case callBuiltin, callConversion:
		return
	case callStatic:
		if cls, acquire, ok := mutexOp(pkg, call, fn); ok {
			tl.events = append(tl.events, lockEvent{pos: call.Pos(), class: cls, acquire: acquire, deferred: deferred})
			return
		}
		// Static calls are recorded unconditionally; the simulation only
		// consults the callee's acquire summary, which is empty for
		// functions outside the analyzed set (stdlib and friends).
		tl.calls = append(tl.calls, lockCall{pos: call.Pos(), fn: fn, desc: fn.Name()})
	default:
		tl.calls = append(tl.calls, lockCall{pos: call.Pos(), dynamic: true, desc: callDesc(call)})
	}
}

// mutexOp reports whether call is a Lock-family method on a sync mutex, and
// resolves the lock class. Mutexes the resolver cannot attribute (locals,
// arbitrary expressions) are ignored: a mutex that never escapes a stack
// frame cannot participate in a cross-goroutine cycle.
func mutexOp(pkg *Package, call *ast.CallExpr, fn *types.Func) (lockClass, bool, bool) {
	if fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockClass{}, false, false
	}
	var acquire bool
	switch fn.Name() {
	case "Lock", "RLock", "TryLock", "TryRLock":
		acquire = true
	case "Unlock", "RUnlock":
		acquire = false
	default:
		return lockClass{}, false, false
	}
	recv := recvTypeName(fn)
	if recv != "Mutex" && recv != "RWMutex" {
		return lockClass{}, false, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockClass{}, false, false
	}
	cls, ok := resolveLockClass(pkg, sel.X)
	return cls, acquire, ok
}

// resolveLockClass maps a mutex-valued expression to its class.
func resolveLockClass(pkg *Package, e ast.Expr) (lockClass, bool) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = x.X // s.linkMu[i] → the linkMu field is the class
			continue
		case *ast.StarExpr:
			e = x.X
			continue
		case *ast.SelectorExpr:
			if sel, ok := pkg.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
				owner := derefType(sel.Recv())
				if named, ok := owner.(*types.Named); ok {
					return lockClass{owner: named.Obj().Name(), field: sel.Obj().Name()}, true
				}
				return lockClass{}, false
			}
			// Package-qualified variable: pkg.mu.Lock().
			if v, ok := pkg.Info.Uses[x.Sel].(*types.Var); ok && v.Pkg() != nil {
				return lockClass{owner: v.Pkg().Name(), field: v.Name()}, true
			}
			return lockClass{}, false
		case *ast.Ident:
			v, ok := pkg.Info.Uses[x].(*types.Var)
			if !ok {
				return lockClass{}, false
			}
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return lockClass{owner: v.Pkg().Name(), field: v.Name()}, true
			}
			// Local or parameter mutex: untracked.
			return lockClass{}, false
		default:
			return lockClass{}, false
		}
	}
}

// callDesc renders a short display form of a dynamic call target.
func callDesc(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		if inner, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			return inner.Sel.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	case *ast.Ident:
		return fun.Name
	}
	return "function value"
}
