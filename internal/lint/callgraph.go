package lint

import (
	"go/ast"
	"go/types"
)

// moduleIndex is the shared call-graph substrate for the interprocedural
// analyzers (taint, lockorder). It maps every function and method declared
// anywhere in the analyzed package set to its syntax, so an analyzer
// resolving a static call in one package can walk into the callee's body in
// another and compute a summary there.
type moduleIndex struct {
	pkgs  []*Package
	funcs map[*types.Func]*declInfo
	// order lists the indexed functions in deterministic (package, file,
	// position) order so fixed-point iteration and reporting are stable.
	order []*types.Func
}

// declInfo ties a declared function to the package whose type info describes
// its body.
type declInfo struct {
	pkg  *Package
	decl *ast.FuncDecl
}

// indexModule builds the function index over every loaded package.
func indexModule(pkgs []*Package) *moduleIndex {
	idx := &moduleIndex{pkgs: pkgs, funcs: make(map[*types.Func]*declInfo)}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				idx.funcs[fn] = &declInfo{pkg: pkg, decl: fd}
				idx.order = append(idx.order, fn)
			}
		}
	}
	return idx
}

// staticCallee resolves call to the *types.Func it will invoke when that is
// statically known: package-level functions, methods on concrete receivers,
// and method expressions. Interface method calls and calls through function
// values return nil — those are dynamic dispatch and each analyzer decides
// how conservative to be about them.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			// Method value or method expression: dynamic iff the method is
			// resolved on an interface.
			if types.IsInterface(sel.Recv()) {
				return nil
			}
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		// Package-qualified function (pkg.F) or a method expression spelled
		// through a named type in another package.
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// callKind classifies a call expression for analyzers that must treat
// conversions, builtins, static calls, and dynamic dispatch differently.
type callKind int

const (
	callConversion callKind = iota // T(x)
	callBuiltin                    // append, copy, len, ...
	callStatic                     // statically resolved function or method
	callDynamic                    // interface method or function value
)

// classifyCall reports what kind of call this is, plus the resolved callee
// for callStatic and the builtin object for callBuiltin.
func classifyCall(info *types.Info, call *ast.CallExpr) (callKind, *types.Func, *types.Builtin) {
	fun := ast.Unparen(call.Fun)
	if id, ok := fun.(*ast.Ident); ok {
		switch obj := info.Uses[id].(type) {
		case *types.Builtin:
			return callBuiltin, nil, obj
		case *types.TypeName:
			return callConversion, nil, nil
		}
	}
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if _, ok := info.Uses[sel.Sel].(*types.TypeName); ok {
			return callConversion, nil, nil
		}
	}
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return callConversion, nil, nil
	}
	if fn := staticCallee(info, call); fn != nil {
		return callStatic, fn, nil
	}
	return callDynamic, nil, nil
}

// receiverArg returns the receiver expression of a method call (the x in
// x.M(...)), or nil for plain function calls and method expressions.
func receiverArg(info *types.Info, call *ast.CallExpr) ast.Expr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
		return sel.X
	}
	return nil
}

// flatParams flattens a function's receiver (if any) and parameters into one
// slice: index 0 is the receiver for methods, parameters follow. This is the
// indexing scheme every interprocedural summary uses.
func flatParams(fn *types.Func) []*types.Var {
	sig := funcSig(fn)
	var out []*types.Var
	if recv := sig.Recv(); recv != nil {
		out = append(out, recv)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		out = append(out, sig.Params().At(i))
	}
	return out
}

// argsForParam returns every caller-side argument expression feeding the
// flattened callee parameter index i, accounting for variadic fan-in (several
// call arguments can feed the one variadic parameter).
func argsForParam(info *types.Info, fn *types.Func, call *ast.CallExpr, i int) []ast.Expr {
	sig := funcSig(fn)
	hasRecv := sig.Recv() != nil
	if hasRecv {
		if i == 0 {
			if recv := receiverArg(info, call); recv != nil {
				return []ast.Expr{recv}
			}
			return nil
		}
		i--
	}
	n := sig.Params().Len()
	if i >= n {
		return nil
	}
	if sig.Variadic() && i == n-1 {
		if len(call.Args) > i {
			return call.Args[i:]
		}
		return nil
	}
	if i < len(call.Args) {
		return []ast.Expr{call.Args[i]}
	}
	return nil
}

// funcSig returns fn's signature. (*types.Func).Signature() itself needs a
// newer go/types than this module targets.
func funcSig(fn *types.Func) *types.Signature {
	sig, _ := fn.Type().(*types.Signature)
	return sig
}
