package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoAllocAnalyzer enforces the //remicss:noalloc annotation: functions so
// marked form the zero-allocation share data path (the gf256 kernels,
// SplitInto/CombineInto, AppendMarshal, the sender hot path) and must not
// contain allocating constructs:
//
//   - make, new
//   - slice and map composite literals, and &T{} literals (heap escapes)
//   - function literals (closure environments allocate)
//   - go statements (a goroutine allocates its stack)
//   - string concatenation and string<->[]byte/[]rune conversions
//   - boxing a non-pointer value into an interface
//   - append whose result is not assigned back to the appended slice
//     (growing a foreign buffer; x = append(x, ...) is the amortized
//     buffer-reuse discipline and is permitted)
//
// Function calls are deliberately opaque — the analyzer is local, and error
// paths (fmt.Errorf and friends) are exempt from the steady-state budget.
// For the same reason, conversions into variadic ...any parameters are not
// reported: in this codebase they occur exclusively in error formatting.
// An amortized growth path inside a noalloc function must be annotated
// //lint:allow noalloc <reason> on the allocating line.
func NoAllocAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "noalloc",
		Doc:  "functions marked //remicss:noalloc must not contain allocating constructs",
	}
	a.Run = func(pass *Pass) {
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !hasMarker(fd.Doc, "noalloc") {
					continue
				}
				checkNoAlloc(pass, fd)
			}
		}
	}
	return a
}

// checkNoAlloc walks one annotated function body.
func checkNoAlloc(pass *Pass, fd *ast.FuncDecl) {
	// selfAppend marks append calls whose result is assigned back to the
	// same slice expression they grow — the amortized reuse pattern.
	selfAppend := make(map[*ast.CallExpr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, rhs := range assign.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBuiltin(pass, call.Fun, "append") || len(call.Args) == 0 {
				continue
			}
			if types.ExprString(stripSlicing(call.Args[0])) == types.ExprString(assign.Lhs[i]) {
				selfAppend[call] = true
			}
		}
		return true
	})

	sig, _ := pass.TypeOf(fd.Name).(*types.Signature)
	var results []*types.Tuple
	if sig != nil {
		results = append(results, sig.Results())
	}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "function literal in noalloc function %s: closures allocate their environment", fd.Name.Name)
			return false
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement in noalloc function %s: spawning a goroutine allocates", fd.Name.Name)
		case *ast.CompositeLit:
			t := pass.TypeOf(n)
			if t == nil {
				break
			}
			switch t.Underlying().(type) {
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal in noalloc function %s allocates", fd.Name.Name)
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal in noalloc function %s allocates", fd.Name.Name)
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "&composite literal in noalloc function %s escapes to the heap", fd.Name.Name)
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && pass.TypeOf(n) != nil {
				if t, ok := pass.TypeOf(n).Underlying().(*types.Basic); ok && t.Info()&types.IsString != 0 {
					pass.Reportf(n.Pos(), "string concatenation in noalloc function %s allocates", fd.Name.Name)
				}
			}
		case *ast.CallExpr:
			checkNoAllocCall(pass, fd, n, selfAppend)
		case *ast.AssignStmt:
			if n.Tok == token.ASSIGN && len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					checkBoxing(pass, fd, pass.TypeOf(n.Lhs[i]), n.Rhs[i])
				}
			}
		case *ast.ReturnStmt:
			if len(results) == 0 {
				break
			}
			res := results[len(results)-1]
			if res != nil && len(n.Results) == res.Len() {
				for i, r := range n.Results {
					checkBoxing(pass, fd, res.At(i).Type(), r)
				}
			}
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

// checkNoAllocCall classifies one call inside a noalloc function: builtins
// that allocate, allocating conversions, and interface boxing at the call
// boundary.
func checkNoAllocCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, selfAppend map[*ast.CallExpr]bool) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				pass.Reportf(call.Pos(), "make in noalloc function %s allocates (//lint:allow noalloc <reason> for amortized growth paths)", fd.Name.Name)
			case "new":
				pass.Reportf(call.Pos(), "new in noalloc function %s allocates", fd.Name.Name)
			case "append":
				if !selfAppend[call] {
					pass.Reportf(call.Pos(), "append in noalloc function %s grows a buffer it does not own (assign the result back to the appended slice, or //lint:allow noalloc <reason>)", fd.Name.Name)
				}
			}
			return
		}
	}
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			checkConversionAlloc(pass, fd, tv.Type, call.Args[0])
		}
		return
	}
	sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		// Variadic tails are exempt: in this codebase they are the ...any
		// of error formatting, which only runs on error paths.
		if sig.Variadic() && i >= params.Len()-1 {
			break
		}
		if i < params.Len() {
			checkBoxing(pass, fd, params.At(i).Type(), arg)
		}
	}
}

// checkConversionAlloc reports string<->byte-slice conversions, which copy.
func checkConversionAlloc(pass *Pass, fd *ast.FuncDecl, dst types.Type, arg ast.Expr) {
	src := pass.TypeOf(arg)
	if src == nil {
		return
	}
	if isString(dst) && isByteOrRuneSlice(src) || isByteOrRuneSlice(dst) && isString(src) {
		pass.Reportf(arg.Pos(), "string/slice conversion in noalloc function %s copies its operand", fd.Name.Name)
		return
	}
	checkBoxing(pass, fd, dst, arg)
}

// checkBoxing reports a non-pointer-shaped value converted into an
// interface, which allocates the boxed copy. Pointer-shaped values (whose
// interface representation is the word itself) and constants are exempt.
func checkBoxing(pass *Pass, fd *ast.FuncDecl, dst types.Type, expr ast.Expr) {
	if dst == nil || expr == nil {
		return
	}
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return
	}
	tv, ok := pass.Info.Types[expr]
	if !ok || tv.Value != nil || tv.IsNil() {
		return
	}
	src := tv.Type
	if src == nil || types.IsInterface(src) || isPointerShaped(src) {
		return
	}
	pass.Reportf(expr.Pos(), "value of type %s boxed into interface %s in noalloc function %s allocates", src, dst, fd.Name.Name)
}

// isBuiltin reports whether fun names the given predeclared builtin.
func isBuiltin(pass *Pass, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// stripSlicing unwraps e[a:b] and (e) wrappers down to the base expression,
// so append(dst[:0], ...) assigned to dst counts as self-append.
func stripSlicing(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.SliceExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return e
		}
	}
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune || e.Kind() == types.Uint8 || e.Kind() == types.Int32)
}

// isPointerShaped reports whether a value of type t fits in an interface
// word without boxing: pointers, channels, maps, funcs, and unsafe
// pointers.
func isPointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}
