package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// TaintAnalyzer returns the interprocedural secret-taint analyzer. It is the
// static counterpart of the protocol's privacy model: values annotated
// //remicss:secret (and every value of a type that transitively contains an
// annotated field) must never reach an observational side door — error
// construction, formatted strings, log output, obs trace events or metric
// labels, os.Stdout — nor escape into retained structures that are not
// themselves marked secret.
//
// The analysis computes a per-function summary (which flattened parameters
// flow to which results, which flow out through pointer/slice parameters,
// and which reach a sink or escape inside the callee) and iterates the
// module's functions to a fixed point, so a leak is caught across any number
// of call hops and package boundaries. It is flow-insensitive within a
// function (taint accumulates; assignments never implicitly clean a
// variable) and conservative at dynamic calls. Two annotations adjust it:
//
//	//remicss:secret [name ...]  on a field, variable, or function doc marks
//	                             sources; on a func doc with no names, every
//	                             parameter (and receiver) is secret.
//	//remicss:sanitizer          on a function doc declares that its results
//	                             carry no taint and that byte-slice arguments
//	                             are scrubbed by the call (the zeroize
//	                             pattern). crypto/subtle is an implicit
//	                             sanitizer: comparisons do not leak.
func TaintAnalyzer() *Analyzer {
	return &Analyzer{
		Name:      "taint",
		Doc:       "secret-annotated data must not reach errors, logs, traces, metric labels, or unannotated retained state",
		RunModule: runTaint,
	}
}

// paramBits is a bitset over a function's flattened parameters (receiver
// first). Parameters beyond 64 are untracked, which no function in this
// module approaches.
type paramBits uint64

func bit(i int) paramBits {
	if i < 0 || i >= 64 {
		return 0
	}
	return 1 << uint(i)
}

// taintVal is the lattice value of one expression or variable: `secret`
// means it concretely carries annotated secret material (with a witness for
// the report), and `params` means it carries whatever taint the enclosing
// function's corresponding arguments carry — the symbolic half that makes
// summaries compose across calls.
type taintVal struct {
	secret bool
	why    string
	params paramBits
}

func (t taintVal) empty() bool { return !t.secret && t.params == 0 }

func (t *taintVal) join(o taintVal) bool {
	changed := false
	if o.secret && !t.secret {
		t.secret, t.why = true, o.why
		changed = true
	}
	if o.params&^t.params != 0 {
		t.params |= o.params
		changed = true
	}
	return changed
}

func secretVal(why string) taintVal { return taintVal{secret: true, why: why} }

// taintSummary is one function's interprocedural contract. All fields grow
// monotonically across fixed-point rounds, which is what guarantees
// termination.
type taintSummary struct {
	// results holds the taint of each result slot in terms of the callee's
	// own flattened parameters plus any concrete secret it manufactures.
	results []taintVal
	// paramOut holds taint the function writes through each flattened
	// parameter (stores through pointers, slice elements, copy into an
	// argument), again relative to its own parameters.
	paramOut []taintVal
	// sinks maps a flattened parameter index to a description of the sink
	// it transitively reaches, e.g. "fmt.Errorf" or "Unmarshal → fmt.Errorf".
	sinks map[int]string
	// escapes maps a flattened parameter index to the retained structure it
	// transitively escapes into.
	escapes map[int]string
}

func newTaintSummary(fn *types.Func) *taintSummary {
	return &taintSummary{
		results:  make([]taintVal, funcSig(fn).Results().Len()),
		paramOut: make([]taintVal, len(flatParams(fn))),
		sinks:    make(map[int]string),
		escapes:  make(map[int]string),
	}
}

// merge joins src into dst and reports whether dst grew.
func (dst *taintSummary) merge(src *taintSummary) bool {
	changed := false
	for i := range dst.results {
		if dst.results[i].join(src.results[i]) {
			changed = true
		}
	}
	for i := range dst.paramOut {
		if dst.paramOut[i].join(src.paramOut[i]) {
			changed = true
		}
	}
	for i, d := range src.sinks {
		if _, ok := dst.sinks[i]; !ok {
			dst.sinks[i] = d
			changed = true
		}
	}
	for i, d := range src.escapes {
		if _, ok := dst.escapes[i]; !ok {
			dst.escapes[i] = d
			changed = true
		}
	}
	return changed
}

// secretInfo is the source model: which fields, variables, and parameters
// the module has annotated as secret, which functions are sanitizers, and
// (memoized) which types intrinsically carry secret material.
type secretInfo struct {
	// lines marks, per file, source lines covered by a //remicss:secret
	// comment. A marker on line L annotates declarations on L (trailing
	// comment) and L+1 (doc line above), mirroring //lint:allow placement.
	lines map[string]map[int]bool
	// fields/vars are the annotated objects resolved from those lines.
	fields map[types.Object]bool
	vars   map[types.Object]bool
	// funcAll marks functions whose doc carries a bare //remicss:secret
	// (receiver and every parameter are sources); funcParams names specific
	// parameters.
	funcAll    map[*types.Func]bool
	funcParams map[*types.Func]map[string]bool
	sanitizers map[*types.Func]bool
	// sigRanges excludes function signature spans from line-based
	// annotation, so `//remicss:secret payload` in a func doc marks only the
	// named parameter instead of every parameter declared on the next line.
	sigRanges map[string][][2]token.Pos

	typeMemo map[types.Type]bool
}

// markerFields returns the space-separated arguments of a //remicss:<name>
// marker in doc, and whether the marker is present at all.
func markerFields(doc *ast.CommentGroup, name string) ([]string, bool) {
	if doc == nil {
		return nil, false
	}
	marker := "//remicss:" + name
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == marker {
			return nil, true
		}
		if strings.HasPrefix(text, marker+" ") {
			return strings.Fields(strings.TrimPrefix(text, marker+" ")), true
		}
	}
	return nil, false
}

func collectSecrets(pkgs []*Package) *secretInfo {
	sec := &secretInfo{
		lines:      make(map[string]map[int]bool),
		fields:     make(map[types.Object]bool),
		vars:       make(map[types.Object]bool),
		funcAll:    make(map[*types.Func]bool),
		funcParams: make(map[*types.Func]map[string]bool),
		sanitizers: make(map[*types.Func]bool),
		sigRanges:  make(map[string][][2]token.Pos),
		typeMemo:   make(map[types.Type]bool),
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, group := range file.Comments {
				for _, c := range group.List {
					// The marker may share a comment with other annotations
					// ("// guarded by mu //remicss:secret").
					if strings.Contains(c.Text, "//remicss:secret") {
						pos := pkg.Fset.Position(c.Pos())
						m := sec.lines[pos.Filename]
						if m == nil {
							m = make(map[int]bool)
							sec.lines[pos.Filename] = m
						}
						m[pos.Line] = true
					}
				}
			}
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				file := pkg.Fset.Position(fd.Type.Pos()).Filename
				sec.sigRanges[file] = append(sec.sigRanges[file], [2]token.Pos{fd.Type.Pos(), fd.Type.End()})
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				if hasMarker(fd.Doc, "sanitizer") {
					sec.sanitizers[fn] = true
				}
				if names, ok := markerFields(fd.Doc, "secret"); ok {
					if len(names) == 0 {
						sec.funcAll[fn] = true
					} else {
						m := make(map[string]bool, len(names))
						for _, n := range names {
							m[n] = true
						}
						sec.funcParams[fn] = m
					}
				}
			}
		}
		// Resolve annotated lines to the variable and field objects defined
		// on them. A marker annotates the defs on its own line (trailing
		// comment); only when that line defines nothing — the marker is a
		// standalone comment — does it annotate the line below, so a trailing
		// marker never bleeds onto the next declaration.
		defsAt := make(map[string]map[int][]*types.Var)
		for id, obj := range pkg.Info.Defs {
			v, ok := obj.(*types.Var)
			if !ok {
				continue
			}
			pos := pkg.Fset.Position(id.Pos())
			if sec.lines[pos.Filename] == nil {
				continue
			}
			inSig := false
			for _, r := range sec.sigRanges[pos.Filename] {
				if id.Pos() >= r[0] && id.Pos() < r[1] {
					inSig = true
					break
				}
			}
			if inSig {
				continue
			}
			m := defsAt[pos.Filename]
			if m == nil {
				m = make(map[int][]*types.Var)
				defsAt[pos.Filename] = m
			}
			m[pos.Line] = append(m[pos.Line], v)
		}
		for filename, markers := range sec.lines {
			for line := range markers {
				vars := defsAt[filename][line]
				if len(vars) == 0 {
					vars = defsAt[filename][line+1]
				}
				for _, v := range vars {
					if v.IsField() {
						sec.fields[v] = true
					} else {
						sec.vars[v] = true
					}
				}
			}
		}
	}
	return sec
}

// secretType reports whether values of t intrinsically carry secret
// material: a struct with a //remicss:secret field (transitively), or a
// slice, array, pointer, map, or channel thereof. Expressions of such types
// are tainted wherever they appear, which is how taint survives trips
// through containers and interface boxes without alias analysis: the moment
// the value comes back at its concrete type, it is secret again.
func (s *secretInfo) secretType(t types.Type) bool {
	if t == nil {
		return false
	}
	if v, ok := s.typeMemo[t]; ok {
		return v
	}
	s.typeMemo[t] = false // cycle breaker; real answer overwrites below
	result := false
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if s.fields[f] || s.secretType(f.Type()) {
				result = true
				break
			}
		}
	case *types.Slice:
		result = s.secretType(u.Elem())
	case *types.Array:
		result = s.secretType(u.Elem())
	case *types.Pointer:
		result = s.secretType(u.Elem())
	case *types.Map:
		result = s.secretType(u.Elem()) || s.secretType(u.Key())
	case *types.Chan:
		result = s.secretType(u.Elem())
	}
	s.typeMemo[t] = result
	return result
}

// typeShort renders t with bare package names for diagnostics.
func typeShort(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

// taintEngine holds the module-wide fixed-point state.
type taintEngine struct {
	idx       *moduleIndex
	sec       *secretInfo
	summaries map[*types.Func]*taintSummary
}

func runTaint(mp *ModulePass) {
	eng := &taintEngine{
		idx:       indexModule(mp.Pkgs),
		sec:       collectSecrets(mp.Pkgs),
		summaries: make(map[*types.Func]*taintSummary),
	}
	for _, fn := range eng.idx.order {
		eng.summaries[fn] = newTaintSummary(fn)
	}
	// Phase 1: iterate summaries to a fixed point. Every summary component
	// only grows, so this terminates; the round cap is a safety net.
	for round := 0; round < 64; round++ {
		changed := false
		for _, fn := range eng.idx.order {
			if eng.summaries[fn].merge(eng.analyzeFunc(fn, nil)) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Phase 2: one reporting pass per function against the final summaries,
	// so each leak is reported exactly once, at the frame where concrete
	// secret material enters the flow.
	for _, fn := range eng.idx.order {
		eng.analyzeFunc(fn, mp)
	}
}

// analyzeFunc runs the intraprocedural transfer function for fn: it iterates
// the body to a local fixed point under the current callee summaries and
// returns the resulting summary. With mp non-nil it instead performs one
// final walk that emits diagnostics.
func (eng *taintEngine) analyzeFunc(fn *types.Func, mp *ModulePass) *taintSummary {
	di := eng.idx.funcs[fn]
	fa := &funcAnalysis{
		eng:       eng,
		pkg:       di.pkg,
		fn:        fn,
		decl:      di.decl,
		params:    make(map[types.Object]int),
		taint:     make(map[types.Object]taintVal),
		alias:     make(map[types.Object]types.Object),
		killedAt:  make(map[types.Object]token.Pos),
		taintedAt: make(map[types.Object]token.Pos),
		sum:       newTaintSummary(fn),
		reported:  make(map[string]bool),
	}
	flat := flatParams(fn)
	names := eng.sec.funcParams[fn]
	for i, p := range flat {
		fa.params[p] = i
		tv := taintVal{params: bit(i)}
		if eng.sec.funcAll[fn] || (names != nil && names[p.Name()]) {
			tv.join(secretVal(fmt.Sprintf("parameter %s of %s is //remicss:secret", p.Name(), fn.Name())))
		}
		fa.taint[p] = tv
	}
	// Named results participate in bare returns.
	if res := di.decl.Type.Results; res != nil {
		for _, field := range res.List {
			for _, name := range field.Names {
				if obj := di.pkg.Info.Defs[name]; obj != nil {
					fa.namedResults = append(fa.namedResults, obj)
				}
			}
		}
	}
	for i := 0; i < 12; i++ {
		fa.changed = false
		fa.walk(fa.decl.Body, true)
		if !fa.changed {
			break
		}
	}
	if mp != nil {
		fa.mp = mp
		fa.walk(fa.decl.Body, true)
	}
	return fa.sum
}

// funcAnalysis is the per-function walk state.
type funcAnalysis struct {
	eng          *taintEngine
	pkg          *Package
	fn           *types.Func
	decl         *ast.FuncDecl
	params       map[types.Object]int
	namedResults []types.Object
	taint        map[types.Object]taintVal
	alias        map[types.Object]types.Object
	killedAt     map[types.Object]token.Pos
	taintedAt    map[types.Object]token.Pos
	sum          *taintSummary
	mp           *ModulePass
	reported     map[string]bool
	changed      bool
}

// walk visits every statement and call in body. topLevel distinguishes the
// function's own body from nested function literals, whose return statements
// must not contribute to the outer function's result taint.
func (fa *funcAnalysis) walk(body *ast.BlockStmt, topLevel bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			fa.walk(n.Body, false)
			return false
		case *ast.AssignStmt:
			fa.handleAssign(n)
		case *ast.ValueSpec:
			fa.handleValueSpec(n)
		case *ast.ReturnStmt:
			if topLevel {
				fa.handleReturn(n)
			}
		case *ast.RangeStmt:
			fa.handleRange(n)
		case *ast.CallExpr:
			fa.processCall(n)
		}
		return true
	})
}

func (fa *funcAnalysis) objOf(id *ast.Ident) types.Object {
	if obj := fa.pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return fa.pkg.Info.Defs[id]
}

// rootObj resolves the variable ultimately written by stores through e
// (stripping indexing, slicing, dereference, and address-of) and follows
// slice/pointer aliases recorded by handleAssign.
func (fa *funcAnalysis) rootObj(e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		case *ast.Ident:
			obj := fa.objOf(x)
			if v, ok := obj.(*types.Var); ok {
				return fa.followAlias(v)
			}
			return nil
		default:
			return nil
		}
	}
}

func (fa *funcAnalysis) followAlias(obj types.Object) types.Object {
	for i := 0; i < 16; i++ {
		next, ok := fa.alias[obj]
		if !ok {
			return obj
		}
		obj = next
	}
	return obj
}

func (fa *funcAnalysis) isPkgVar(obj types.Object) bool {
	return obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}

// taintOf computes the current taint of expression e. It is a pure read of
// the walk state; call side effects are applied separately by processCall.
func (fa *funcAnalysis) taintOf(e ast.Expr) taintVal {
	var t taintVal
	if e == nil {
		return t
	}
	if typ := fa.pkg.Info.TypeOf(e); typ != nil && fa.eng.sec.secretType(typ) {
		t.join(secretVal("value of secret-bearing type " + typeShort(typ)))
	}
	switch e := e.(type) {
	case *ast.Ident:
		obj := fa.objOf(e)
		if v, ok := obj.(*types.Var); ok {
			if fa.eng.sec.vars[v] {
				t.join(secretVal("//remicss:secret variable " + v.Name()))
			}
			t.join(fa.taint[fa.followAlias(v)])
		}
	case *ast.SelectorExpr:
		if sel, ok := fa.pkg.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			// Field projection barrier: an unannotated field of a
			// non-secret type read from a tainted base is clean (share
			// indices, sequence numbers, lengths). Annotated fields are
			// secret regardless of the base; secret-typed fields were
			// already caught by the intrinsic check above.
			if fa.eng.sec.fields[sel.Obj()] {
				t.join(secretVal("//remicss:secret field " + sel.Obj().Name()))
			}
		} else if v, ok := fa.pkg.Info.Uses[e.Sel].(*types.Var); ok {
			// Package-qualified variable.
			if fa.eng.sec.vars[v] {
				t.join(secretVal("//remicss:secret variable " + v.Name()))
			}
			t.join(fa.taint[v])
		}
	case *ast.ParenExpr:
		t.join(fa.taintOf(e.X))
	case *ast.StarExpr:
		t.join(fa.taintOf(e.X))
	case *ast.UnaryExpr:
		if e.Op != token.NOT {
			t.join(fa.taintOf(e.X))
		}
	case *ast.IndexExpr:
		t.join(fa.taintOf(e.X))
	case *ast.SliceExpr:
		t.join(fa.taintOf(e.X))
	case *ast.TypeAssertExpr:
		t.join(fa.taintOf(e.X))
	case *ast.BinaryExpr:
		switch e.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ, token.LAND, token.LOR:
			// Comparisons and boolean connectives declassify: a branch
			// outcome is the protocol-level observable the model already
			// prices in, not a byte leak.
		default:
			t.join(fa.taintOf(e.X))
			t.join(fa.taintOf(e.Y))
		}
	case *ast.CompositeLit:
		isMap := false
		if typ := fa.pkg.Info.TypeOf(e); typ != nil {
			_, isMap = typ.Underlying().(*types.Map)
		}
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				t.join(fa.taintOf(kv.Value))
				if isMap {
					t.join(fa.taintOf(kv.Key))
				}
			} else {
				t.join(fa.taintOf(elt))
			}
		}
	case *ast.CallExpr:
		results := fa.callResults(e)
		for _, r := range results {
			t.join(r)
		}
	}
	return t
}

// joinObj accumulates tv into the root object, tracking when it last gained
// taint (for the zeroize check) and growing the paramOut summary when the
// write is through a parameter's memory.
func (fa *funcAnalysis) joinObj(root types.Object, tv taintVal, pos token.Pos, indirect bool) {
	if root == nil || tv.empty() {
		return
	}
	cur := fa.taint[root]
	if cur.join(tv) {
		fa.taint[root] = cur
		fa.changed = true
	}
	if p := fa.taintedAt[root]; pos > p {
		fa.taintedAt[root] = pos
	}
	if indirect {
		if i, ok := fa.params[root]; ok {
			if fa.sum.paramOut[i].join(tv) {
				fa.changed = true
			}
		}
	}
}

func (fa *funcAnalysis) kill(e ast.Expr, pos token.Pos) {
	root := fa.rootObj(e)
	if root == nil {
		return
	}
	if p := fa.killedAt[root]; pos > p {
		fa.killedAt[root] = pos
	}
}

// store applies an assignment of tv into lhs.
func (fa *funcAnalysis) store(lhs ast.Expr, tv taintVal, pos token.Pos, indirect bool) {
	e := lhs
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
			continue
		case *ast.IndexExpr:
			e, indirect = x.X, true
			continue
		case *ast.SliceExpr:
			e, indirect = x.X, true
			continue
		case *ast.StarExpr:
			e, indirect = x.X, true
			continue
		}
		break
	}
	switch base := e.(type) {
	case *ast.Ident:
		if base.Name == "_" {
			return
		}
		obj := fa.objOf(base)
		v, ok := obj.(*types.Var)
		if !ok {
			return
		}
		if fa.isPkgVar(v) {
			fa.checkRetention(v, tv, lhs.Pos(), "package-level variable "+v.Name(),
				fa.eng.sec.vars[v] || fa.eng.sec.secretType(v.Type()))
			return
		}
		fa.joinObj(fa.followAlias(v), tv, pos, indirect)
	case *ast.SelectorExpr:
		if sel, ok := fa.pkg.Info.Selections[base]; ok && sel.Kind() == types.FieldVal {
			f := sel.Obj()
			recv := typeShort(derefType(fa.pkg.Info.TypeOf(base.X)))
			fa.checkRetention(f, tv, lhs.Pos(), fmt.Sprintf("unannotated field %s.%s", recv, f.Name()),
				fa.eng.sec.fields[f] || fa.eng.sec.secretType(f.Type()))
			return
		}
		if v, ok := fa.pkg.Info.Uses[base.Sel].(*types.Var); ok && fa.isPkgVar(v) {
			fa.checkRetention(v, tv, lhs.Pos(), "package-level variable "+v.Name(),
				fa.eng.sec.vars[v] || fa.eng.sec.secretType(v.Type()))
		}
	}
}

// checkRetention enforces the escape half of the invariant: secret taint may
// only be stored into locations that are themselves part of the annotated
// secret perimeter.
func (fa *funcAnalysis) checkRetention(obj types.Object, tv taintVal, pos token.Pos, where string, inPerimeter bool) {
	if inPerimeter || tv.empty() {
		return
	}
	if tv.secret {
		fa.report(pos, fmt.Sprintf("secret value (%s) escapes into %s; annotate the destination //remicss:secret or scrub the value first", tv.why, where))
	}
	for i := 0; i < 64; i++ {
		if tv.params&bit(i) != 0 {
			if _, ok := fa.sum.escapes[i]; !ok {
				fa.sum.escapes[i] = where
				fa.changed = true
			}
		}
	}
	_ = obj
}

func derefType(t types.Type) types.Type {
	if t == nil {
		return t
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

func (fa *funcAnalysis) handleAssign(n *ast.AssignStmt) {
	// Multi-value forms: x, y := f() / v, ok := m[k] / v, ok := x.(T).
	if len(n.Lhs) > 1 && len(n.Rhs) == 1 {
		if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
			results := fa.callResults(call)
			for i, lhs := range n.Lhs {
				if i < len(results) {
					fa.store(lhs, results[i], n.TokPos, false)
				}
			}
			return
		}
		t := fa.taintOf(n.Rhs[0])
		fa.store(n.Lhs[0], t, n.TokPos, false)
		return
	}
	for i, lhs := range n.Lhs {
		if i >= len(n.Rhs) {
			break
		}
		rhs := n.Rhs[i]
		t := fa.taintOf(rhs)
		if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
			// Compound assignment reads the destination too.
			t.join(fa.taintOf(lhs))
		}
		if n.Tok == token.DEFINE {
			fa.recordAlias(lhs, rhs)
		}
		fa.store(lhs, t, n.TokPos, false)
	}
}

// recordAlias remembers that a defined slice or pointer local shares backing
// memory with the right-hand side's root, so later stores through the new
// name resolve to the original variable (and produce paramOut facts when
// that original is a parameter): buf := dst[off:]; copy(buf, secret) must
// taint dst in the caller.
func (fa *funcAnalysis) recordAlias(lhs, rhs ast.Expr) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj, ok := fa.pkg.Info.Defs[id].(*types.Var)
	if !ok {
		return
	}
	switch obj.Type().Underlying().(type) {
	case *types.Slice, *types.Pointer:
	default:
		return
	}
	root := fa.rootObj(rhs)
	if root == nil || root == obj || fa.isPkgVar(root) {
		return
	}
	if fa.alias[obj] != root {
		fa.alias[obj] = root
		fa.changed = true
	}
}

// handleValueSpec treats `var x = expr` inside a body like a define.
func (fa *funcAnalysis) handleValueSpec(n *ast.ValueSpec) {
	if len(n.Names) > 1 && len(n.Values) == 1 {
		if call, ok := ast.Unparen(n.Values[0]).(*ast.CallExpr); ok {
			results := fa.callResults(call)
			for i, name := range n.Names {
				if i < len(results) {
					fa.store(name, results[i], n.Pos(), false)
				}
			}
			return
		}
	}
	for i, name := range n.Names {
		if i >= len(n.Values) {
			break
		}
		fa.recordAlias(name, n.Values[i])
		fa.store(name, fa.taintOf(n.Values[i]), n.Pos(), false)
	}
}

func (fa *funcAnalysis) handleReturn(n *ast.ReturnStmt) {
	joinResult := func(i int, tv taintVal) {
		if i < len(fa.sum.results) && fa.sum.results[i].join(tv) {
			fa.changed = true
		}
	}
	if len(n.Results) == 0 {
		for i, obj := range fa.namedResults {
			joinResult(i, fa.taint[obj])
		}
		return
	}
	if len(n.Results) == 1 && len(fa.sum.results) > 1 {
		if call, ok := ast.Unparen(n.Results[0]).(*ast.CallExpr); ok {
			for i, tv := range fa.callResults(call) {
				joinResult(i, tv)
			}
			return
		}
	}
	for i, e := range n.Results {
		joinResult(i, fa.taintOf(e))
	}
}

func (fa *funcAnalysis) handleRange(n *ast.RangeStmt) {
	t := fa.taintOf(n.X)
	if n.Value != nil {
		fa.store(n.Value, t, n.TokPos, false)
		if n.Tok == token.DEFINE {
			fa.recordAlias(n.Value, n.X)
		}
	}
}

// callResults computes the taint of each result of call without applying
// side effects.
func (fa *funcAnalysis) callResults(call *ast.CallExpr) []taintVal {
	kind, fn, builtin := classifyCall(fa.pkg.Info, call)
	switch kind {
	case callConversion:
		if len(call.Args) == 1 {
			return []taintVal{fa.taintOf(call.Args[0])}
		}
		return nil
	case callBuiltin:
		switch builtin.Name() {
		case "append":
			var t taintVal
			for _, a := range call.Args {
				t.join(fa.taintOf(a))
			}
			return []taintVal{t}
		default:
			// len, cap, copy, make, new, min, max, clear, delete, ...:
			// results carry no byte-level taint.
			return []taintVal{{}}
		}
	case callStatic:
		if fa.isSanitizer(fn) {
			return make([]taintVal, funcSig(fn).Results().Len())
		}
		if catalogSink(fn) != "" {
			// The leak is reported at the sink call itself; its result (a
			// formatted string or error) is not re-reported downstream.
			return make([]taintVal, funcSig(fn).Results().Len())
		}
		if sum, ok := fa.eng.summaries[fn]; ok {
			out := make([]taintVal, len(sum.results))
			for i, tv := range sum.results {
				out[i] = fa.resolveSummaryVal(tv, fn, call)
			}
			return out
		}
		return fa.defaultCallResults(funcSig(fn), call)
	default: // callDynamic
		var sig *types.Signature
		if tv, ok := fa.pkg.Info.Types[call.Fun]; ok {
			sig, _ = tv.Type.Underlying().(*types.Signature)
		}
		return fa.defaultCallResults(sig, call)
	}
}

// defaultCallResults is the conservative model for calls with no body
// available: every non-error result carries the join of the arguments and
// receiver. Error results are exempt — errors manufactured by well-behaved
// callees describe their inputs through the sink catalog's own functions,
// which are checked at construction inside the callee when its source is
// part of the module, and stdlib errors do not embed caller byte slices.
func (fa *funcAnalysis) defaultCallResults(sig *types.Signature, call *ast.CallExpr) []taintVal {
	var t taintVal
	for _, a := range call.Args {
		t.join(fa.taintOf(a))
	}
	if recv := receiverArg(fa.pkg.Info, call); recv != nil {
		t.join(fa.taintOf(recv))
	}
	n := 1
	if sig != nil {
		n = sig.Results().Len()
	}
	out := make([]taintVal, n)
	for i := range out {
		if sig != nil && isErrorType(sig.Results().At(i).Type()) {
			continue
		}
		out[i] = t
	}
	return out
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// resolveSummaryVal translates a callee-relative taint value into the
// caller's frame by substituting each parameter bit with the taint of the
// argument expressions feeding it.
func (fa *funcAnalysis) resolveSummaryVal(tv taintVal, fn *types.Func, call *ast.CallExpr) taintVal {
	out := taintVal{secret: tv.secret, why: tv.why}
	for i := 0; i < 64; i++ {
		if tv.params&bit(i) == 0 {
			continue
		}
		for _, arg := range argsForParam(fa.pkg.Info, fn, call, i) {
			out.join(fa.taintOf(arg))
		}
	}
	return out
}

func (fa *funcAnalysis) isSanitizer(fn *types.Func) bool {
	if fa.eng.sec.sanitizers[fn] {
		return true
	}
	return fn.Pkg() != nil && fn.Pkg().Path() == "crypto/subtle"
}

// processCall applies a call's side effects — sink checks, escape checks,
// paramOut propagation, sanitizer kills — exactly once per AST visit.
func (fa *funcAnalysis) processCall(call *ast.CallExpr) {
	kind, fn, builtin := classifyCall(fa.pkg.Info, call)
	switch kind {
	case callBuiltin:
		switch builtin.Name() {
		case "copy":
			if len(call.Args) == 2 {
				fa.store(call.Args[0], fa.taintOf(call.Args[1]), call.Pos(), true)
			}
		case "clear":
			if len(call.Args) == 1 {
				fa.kill(call.Args[0], call.End())
			}
		}
		return
	case callConversion:
		return
	case callStatic:
		if fa.isSanitizer(fn) {
			// Annotated sanitizers scrub their byte-slice arguments (the
			// zeroize pattern). The implicit crypto/subtle sanitizers only
			// neutralize results; they do not modify arguments.
			if fa.eng.sec.sanitizers[fn] {
				for _, a := range call.Args {
					if typ := fa.pkg.Info.TypeOf(a); typ != nil && isSliceOrPtr(typ) {
						fa.kill(a, call.End())
					}
				}
			}
			return
		}
		if sink := catalogSink(fn); sink != "" {
			for _, a := range call.Args {
				fa.checkSinkArg(a, sink)
			}
			return
		}
		if sum, ok := fa.eng.summaries[fn]; ok {
			fa.applySummary(fn, sum, call)
			return
		}
		fa.unknownCallEffects(call)
	default: // callDynamic
		if sink := fa.writerSink(call); sink != "" {
			for _, a := range call.Args {
				fa.checkSinkArg(a, sink)
			}
			return
		}
		fa.unknownCallEffects(call)
	}
}

// checkSinkArg reports concrete secrets reaching a sink and records symbolic
// (parameter-borne) flows in the summary so callers inherit the finding.
func (fa *funcAnalysis) checkSinkArg(arg ast.Expr, sink string) {
	t := fa.taintOf(arg)
	if t.secret {
		fa.reportLeak(arg, fmt.Sprintf("secret value (%s) reaches %s", t.why, sink))
	}
	for i := 0; i < 64; i++ {
		if t.params&bit(i) != 0 {
			if _, ok := fa.sum.sinks[i]; !ok {
				fa.sum.sinks[i] = sink
				fa.changed = true
			}
		}
	}
}

// applySummary propagates a module callee's summary into this frame.
func (fa *funcAnalysis) applySummary(fn *types.Func, sum *taintSummary, call *ast.CallExpr) {
	chain := func(desc string) string { return fn.Name() + " → " + desc }
	for i, desc := range sum.sinks {
		for _, arg := range argsForParam(fa.pkg.Info, fn, call, i) {
			t := fa.taintOf(arg)
			if t.secret {
				fa.reportLeak(arg, fmt.Sprintf("secret value (%s) reaches %s", t.why, chain(desc)))
			}
			for j := 0; j < 64; j++ {
				if t.params&bit(j) != 0 {
					if _, ok := fa.sum.sinks[j]; !ok {
						fa.sum.sinks[j] = chain(desc)
						fa.changed = true
					}
				}
			}
		}
	}
	for i, desc := range sum.escapes {
		for _, arg := range argsForParam(fa.pkg.Info, fn, call, i) {
			t := fa.taintOf(arg)
			if t.secret {
				fa.reportLeak(arg, fmt.Sprintf("secret value (%s) escapes into %s via %s", t.why, desc, fn.Name()))
			}
			for j := 0; j < 64; j++ {
				if t.params&bit(j) != 0 {
					if _, ok := fa.sum.escapes[j]; !ok {
						fa.sum.escapes[j] = chain(desc)
						fa.changed = true
					}
				}
			}
		}
	}
	for i, tv := range sum.paramOut {
		if tv.empty() {
			continue
		}
		resolved := fa.resolveSummaryVal(tv, fn, call)
		for _, arg := range argsForParam(fa.pkg.Info, fn, call, i) {
			fa.store(arg, resolved, call.Pos(), true)
		}
	}
}

// unknownCallEffects is the conservative model for bodies the analysis
// cannot see (stdlib, interface dispatch, function values): the join of all
// inputs flows into every mutable argument and the receiver. This is what
// carries taint through io.Reader.Read into the destination buffer and
// through bytes.Buffer.Write into the buffer, without a catalog of stdlib
// mutators.
func (fa *funcAnalysis) unknownCallEffects(call *ast.CallExpr) {
	var t taintVal
	for _, a := range call.Args {
		t.join(fa.taintOf(a))
	}
	recv := receiverArg(fa.pkg.Info, call)
	if recv != nil {
		t.join(fa.taintOf(recv))
	}
	if t.empty() {
		return
	}
	// Package-level roots are exempt: the common shape is a read-only
	// global table (a crc32.Table, a cipher sbox) passed alongside secret
	// data, and an unseen callee writing its input into a caller-supplied
	// global would be pathological. Module functions that really retain an
	// argument have bodies, and their real summaries catch it.
	for _, a := range call.Args {
		if typ := fa.pkg.Info.TypeOf(a); typ != nil && isSliceOrPtr(typ) {
			if root := fa.rootObj(a); root != nil && fa.isPkgVar(root) {
				continue
			}
			fa.store(a, t, call.Pos(), true)
		}
	}
	if recv != nil {
		if typ := fa.pkg.Info.TypeOf(recv); typ != nil && isSliceOrPtr(typ) {
			if root := fa.rootObj(recv); root != nil && fa.isPkgVar(root) {
				return
			}
			fa.store(recv, t, call.Pos(), true)
		}
	}
}

// isSliceOrPtr reports whether a call argument of this type is mutable by
// the callee. Interfaces are deliberately excluded: treating every interface
// argument as an out-parameter would, e.g., taint the net.Addr passed
// alongside a secret payload in WriteTo and then flag innocent
// "write to %v failed" errors.
func isSliceOrPtr(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Pointer, *types.Map:
		return true
	}
	return false
}

// writerSink recognizes dynamic method calls that are really writes to the
// process's standard streams: os.Stdout.Write(...), os.Stderr.WriteString(...).
func (fa *funcAnalysis) writerSink(call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	recv, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	v, ok := fa.pkg.Info.Uses[recv.Sel].(*types.Var)
	if !ok || v.Pkg() == nil || v.Pkg().Path() != "os" {
		return ""
	}
	if v.Name() == "Stdout" || v.Name() == "Stderr" {
		return "os." + v.Name()
	}
	return ""
}

// catalogSink names the observational side doors: any function that turns
// its arguments into operator-visible text, an error value, or an obs
// series/trace slot.
func catalogSink(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return ""
	}
	name := fn.Name()
	switch pkg.Path() {
	case "fmt":
		switch name {
		case "Errorf", "Sprintf", "Sprint", "Sprintln",
			"Fprintf", "Fprint", "Fprintln",
			"Printf", "Print", "Println",
			"Appendf", "Append", "Appendln":
			return "fmt." + name
		}
	case "errors":
		if name == "New" {
			return "errors.New"
		}
	case "log":
		switch {
		case strings.HasPrefix(name, "Print"),
			strings.HasPrefix(name, "Fatal"),
			strings.HasPrefix(name, "Panic"),
			name == "Output":
			return "log." + name
		}
	case "os":
		// os.WriteFile etc. persist bytes outside the process.
		if name == "WriteFile" {
			return "os.WriteFile"
		}
	}
	// The module's own observability surfaces, matched by path suffix so the
	// catalog works for both the real module and fixture loads.
	if strings.HasSuffix(pkg.Path(), "internal/obs") {
		switch recvTypeName(fn) {
		case "Trace":
			if name == "Record" {
				return "obs trace event"
			}
		case "Registry":
			switch name {
			case "Counter", "Gauge", "Histogram":
				return "obs metric label"
			}
		}
	}
	return ""
}

// recvTypeName returns the bare name of fn's receiver type, or "".
func recvTypeName(fn *types.Func) string {
	recv := funcSig(fn).Recv()
	if recv == nil {
		return ""
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// reportLeak emits one diagnostic per (position, message), honoring the
// zeroize pattern: a flow whose single source variable was scrubbed (clear()
// or a //remicss:sanitizer call) before this use, and not re-tainted since,
// is suppressed.
func (fa *funcAnalysis) reportLeak(at ast.Expr, msg string) {
	if fa.mp == nil {
		return
	}
	if root := fa.rootObj(at); root != nil {
		if k, ok := fa.killedAt[root]; ok && k < at.Pos() && fa.taintedAt[root] <= k {
			if !fa.eng.sec.secretType(root.Type()) {
				return
			}
		}
	}
	key := fmt.Sprintf("%d:%s", at.Pos(), msg)
	if fa.reported[key] {
		return
	}
	fa.reported[key] = true
	fa.mp.Reportf(fa.pkg.Fset, at.Pos(), "%s", msg)
}

func (fa *funcAnalysis) report(pos token.Pos, msg string) {
	if fa.mp == nil {
		return
	}
	key := fmt.Sprintf("%d:%s", pos, msg)
	if fa.reported[key] {
		return
	}
	fa.reported[key] = true
	fa.mp.Reportf(fa.pkg.Fset, pos, "%s", msg)
}
