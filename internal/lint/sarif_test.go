package lint_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"remicss/internal/lint"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestSARIFGolden pins the exact SARIF 2.1.0 bytes for a fixed diagnostic
// set: the rule catalog (every default analyzer plus the synthetic
// stale-allow rule), rule index resolution, slash-normalized repo-relative
// URIs, and region coordinates. Regenerate with -update after deliberate
// format changes.
func TestSARIFGolden(t *testing.T) {
	analyzers := lint.DefaultAnalyzers("remicss")
	diags := []lint.Diagnostic{
		{
			Analyzer: "taint",
			File:     "internal/shamir/shamir.go",
			Line:     42,
			Column:   7,
			Message:  "secret value (//remicss:secret field Y) reaches fmt.Errorf",
		},
		{
			Analyzer: "lockorder",
			File:     "internal/remicss/sender.go",
			Line:     310,
			Column:   3,
			Message:  "lock order cycle: Sender.chooserMu acquired while Sender.linkMu is held, but the reverse order also occurs in the module",
		},
		{
			Analyzer: "stale-allow",
			File:     "examples/chaos/main.go",
			Line:     12,
			Column:   5,
			Message:  "lint:allow insecure-rand directive suppresses no diagnostic; the invariant holds here, remove the directive",
		},
	}
	var buf bytes.Buffer
	if err := lint.WriteSARIF(&buf, analyzers, diags); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "golden.sarif")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("SARIF output drifted from golden file; run with -update if intended\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestSARIFEmpty asserts a clean run still produces a valid log with the
// full rule catalog and an empty (non-null) results array — code-scanning
// endpoints reject null results.
func TestSARIFEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := lint.WriteSARIF(&buf, lint.DefaultAnalyzers("remicss"), nil); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []json.RawMessage `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("decoding SARIF: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("unexpected log shape: version %q, %d runs", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "remicss-lint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != len(lint.DefaultAnalyzers("remicss")) {
		t.Errorf("rule catalog has %d rules, want %d", len(run.Tool.Driver.Rules), len(lint.DefaultAnalyzers("remicss")))
	}
	if run.Results == nil {
		t.Error("results is null; must be an empty array")
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"results": []`)) {
		t.Error("empty results not serialized as []")
	}
}
