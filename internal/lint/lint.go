// Package lint is a small static-analysis framework, built only on the
// standard library's go/ast, go/parser, and go/types, that mechanically
// enforces the repository's data-path and secrecy invariants:
//
//   - insecure-rand: secret-bearing packages must not import math/rand, and
//     math/rand values must never flow into an io.Reader-shaped randomness
//     slot (the way every sharing scheme consumes entropy).
//   - noalloc: functions annotated //remicss:noalloc must not contain
//     allocating constructs (make, new, slice/map literals, closures,
//     interface boxing, string concatenation, append to a foreign buffer).
//   - mutexguard: struct fields annotated "guarded by mu" may only be
//     touched after the guarding mutex is locked in the same function.
//   - noretain: Link.Send / datagram-ingest implementations must not retain
//     their []byte argument (or a subslice of it) beyond the call.
//   - readonly-input: Unmarshal-shaped functions must not write through
//     their input slice.
//
// Every diagnostic can be suppressed with an explicit, justified annotation:
//
//	//lint:allow <analyzer> <reason>
//
// placed on the offending line, on the line directly above it, or in a
// function's doc comment (which suppresses the analyzer for the whole
// function). The reason is mandatory; a directive without one is itself a
// diagnostic. This keeps every exception to an invariant written down next
// to the code that needs it.
//
// The framework favors simple, local reasoning over whole-program precision:
// analyzers are syntactic and type-based, do not follow calls, and
// approximate "on all paths" by "textually before". False negatives across
// function boundaries are accepted; false positives are kept near zero so
// the suite can run as a required CI step (see cmd/remicss-lint).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named invariant check. Per-package analyzers set Run and
// see one package at a time; whole-module analyzers (taint, lockorder,
// atomicmix) set RunModule and see every loaded package at once, which is
// what lets them follow flows and lock acquisitions across package
// boundaries. An analyzer sets exactly one of the two.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:allow
	// directives.
	Name string
	// Doc is a one-line description of the invariant enforced.
	Doc string
	// Run inspects the package behind the pass and reports violations.
	Run func(*Pass)
	// RunModule inspects every loaded package together and reports
	// violations; it is invoked once per Run call, not once per package.
	RunModule func(*ModulePass)
}

// Pass is one analyzer's view of one package: the syntax trees, the type
// information, and a sink for diagnostics.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps positions for every file in the package.
	Fset *token.FileSet
	// Files are the package's parsed source files (tests excluded).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's expression, definition, use, and
	// selection records for Files.
	Info *types.Info

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Column:   position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil if the type checker did not record
// one.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Info.TypeOf(e)
}

// ModulePass is a module-wide analyzer's view of the whole load: every
// package, plus a sink for diagnostics.
type ModulePass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Pkgs are all loaded packages, in load order.
	Pkgs []*Package

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos, resolved through the package that
// owns the position.
func (p *ModulePass) Reportf(fset *token.FileSet, pos token.Pos, format string, args ...any) {
	position := fset.Position(pos)
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Column:   position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported invariant violation, positioned at file:line.
type Diagnostic struct {
	// Analyzer names the check that produced the diagnostic.
	Analyzer string `json:"analyzer"`
	// File is the source file path as loaded.
	File string `json:"file"`
	// Line and Column locate the violation (1-based).
	Line int `json:"line"`
	// Column is the 1-based column of the violation.
	Column int `json:"column"`
	// Message describes the violation and how to fix or suppress it.
	Message string `json:"message"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Column, d.Analyzer, d.Message)
}

// Run executes every analyzer over every package and returns the surviving
// diagnostics (those not suppressed by a //lint:allow directive), sorted by
// position. Malformed directives — unknown analyzer name or missing reason —
// are themselves reported, and so are stale directives: a well-formed
// //lint:allow that suppresses no diagnostic of the analyzers actually run
// is dead weight hiding nothing, and is reported as [stale-allow] so sweeps
// remove it.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	// Suppressions are collected across the whole load before any analyzer
	// runs: module-wide analyzers may report a diagnostic in package A from
	// facts discovered in package B, and the directive lives next to the
	// reported line regardless of which package produced the finding.
	sup := &suppressions{lines: make(map[string]map[string]map[int]*directive)}
	for _, pkg := range pkgs {
		collectSuppressions(sup, pkg, known)
	}

	var raw []Diagnostic
	report := func(d Diagnostic) { raw = append(raw, d) }
	for _, a := range analyzers {
		if a.Run == nil {
			continue
		}
		for _, pkg := range pkgs {
			a.Run(&Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				report:   report,
			})
		}
	}
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		a.RunModule(&ModulePass{Analyzer: a, Pkgs: pkgs, report: report})
	}

	out := append([]Diagnostic(nil), sup.invalid...)
	for _, d := range raw {
		if !sup.allows(d) {
			out = append(out, d)
		}
	}
	out = append(out, sup.stale()...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// allowDirective is the comment prefix that suppresses a diagnostic.
const allowDirective = "//lint:allow"

// parseAllow splits a comment into an allow directive's analyzer name and
// justification. ok is false for comments that are not directives at all.
func parseAllow(text string) (analyzer, reason string, ok bool) {
	if !strings.HasPrefix(text, allowDirective) {
		return "", "", false
	}
	rest := text[len(allowDirective):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", "", false // e.g. //lint:allowance
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", "", true
	}
	analyzer = fields[0]
	reason = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), analyzer))
	return analyzer, reason, true
}

// directive is one well-formed //lint:allow annotation, tracked so unused
// (stale) directives can themselves be reported.
type directive struct {
	analyzer string
	file     string
	line     int // the directive's own position
	column   int
	used     bool
}

// suppressions indexes //lint:allow directives: exact suppressed lines per
// analyzer and file, plus diagnostics for malformed directives.
type suppressions struct {
	// lines[analyzer][file][line] points at the directive covering that
	// line; several lines (a whole function body) may share one directive.
	lines   map[string]map[string]map[int]*directive
	all     []*directive
	invalid []Diagnostic
}

func (s *suppressions) add(d *directive, from, to int) {
	s.all = append(s.all, d)
	byFile := s.lines[d.analyzer]
	if byFile == nil {
		byFile = make(map[string]map[int]*directive)
		s.lines[d.analyzer] = byFile
	}
	set := byFile[d.file]
	if set == nil {
		set = make(map[int]*directive)
		byFile[d.file] = set
	}
	for l := from; l <= to; l++ {
		if set[l] == nil {
			set[l] = d
		}
	}
}

func (s *suppressions) allows(d Diagnostic) bool {
	dir := s.lines[d.Analyzer][d.File][d.Line]
	if dir == nil {
		return false
	}
	dir.used = true
	return true
}

// The framework itself emits diagnostics under two reserved analyzer names:
// directive for malformed //lint:allow comments and stale-allow for
// directives that suppressed nothing.
const (
	directiveAnalyzerName  = "directive"
	staleAllowAnalyzerName = "stale-allow"
)

// stale returns one diagnostic per directive that suppressed nothing during
// this run. Since validateAllow already rejected directives naming analyzers
// outside the run set, every directive here had its analyzer executed.
func (s *suppressions) stale() []Diagnostic {
	var out []Diagnostic
	for _, dir := range s.all {
		if dir.used {
			continue
		}
		out = append(out, Diagnostic{
			Analyzer: staleAllowAnalyzerName,
			File:     dir.file,
			Line:     dir.line,
			Column:   dir.column,
			Message: fmt.Sprintf("lint:allow %s directive suppresses no diagnostic; the invariant holds here, remove the directive",
				dir.analyzer),
		})
	}
	return out
}

// collectSuppressions gathers every allow directive in the package into sup.
// A directive in a function's doc comment suppresses the analyzer across the
// whole function body; any other directive suppresses its own line and the
// line below (so it works both as a trailing comment and as a comment above
// the offending statement).
func collectSuppressions(sup *suppressions, pkg *Package, known map[string]bool) {
	consumed := make(map[*ast.Comment]bool)
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				analyzer, reason, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				consumed[c] = true
				if bad := validateAllow(pkg, c, analyzer, reason, known); bad != nil {
					sup.invalid = append(sup.invalid, *bad)
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				start := pkg.Fset.Position(fd.Pos()).Line
				end := pkg.Fset.Position(fd.End()).Line
				sup.add(&directive{analyzer: analyzer, file: pos.Filename, line: pos.Line, column: pos.Column}, start, end)
			}
		}
		for _, group := range file.Comments {
			for _, c := range group.List {
				if consumed[c] {
					continue
				}
				analyzer, reason, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				if bad := validateAllow(pkg, c, analyzer, reason, known); bad != nil {
					sup.invalid = append(sup.invalid, *bad)
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				sup.add(&directive{analyzer: analyzer, file: pos.Filename, line: pos.Line, column: pos.Column}, pos.Line, pos.Line+1)
			}
		}
	}
}

// validateAllow checks a parsed directive and returns a diagnostic when it
// names an unknown analyzer or omits the mandatory justification.
func validateAllow(pkg *Package, c *ast.Comment, analyzer, reason string, known map[string]bool) *Diagnostic {
	pos := pkg.Fset.Position(c.Pos())
	bad := func(msg string) *Diagnostic {
		return &Diagnostic{
			Analyzer: directiveAnalyzerName,
			File:     pos.Filename,
			Line:     pos.Line,
			Column:   pos.Column,
			Message:  msg,
		}
	}
	if analyzer == "" {
		return bad("lint:allow directive names no analyzer")
	}
	if !known[analyzer] {
		return bad(fmt.Sprintf("lint:allow directive names unknown analyzer %q", analyzer))
	}
	if reason == "" {
		return bad(fmt.Sprintf("lint:allow %s directive has no justification; write down why the invariant does not apply", analyzer))
	}
	return nil
}

// hasMarker reports whether a doc comment contains the //remicss:<name>
// machine-readable marker line.
func hasMarker(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	marker := "//remicss:" + name
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == marker || strings.HasPrefix(text, marker+" ") {
			return true
		}
	}
	return false
}

// guardedRe extracts the mutex field name from a "guarded by <field>" field
// annotation.
var guardedRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// guardAnnotation returns the guarding field named by a field's doc or
// trailing comment, or "" when the field carries no annotation.
func guardAnnotation(field *ast.Field) string {
	for _, group := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if group == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(group.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}
