package lint_test

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"remicss/internal/lint"
)

// wantRe pulls the backtick-quoted expectation regexes out of a comment
// containing "want `...` `...`".
var wantRe = regexp.MustCompile("`([^`]+)`")

// collectWants scans a fixture package's comments for want expectations and
// returns them keyed by "file:line".
func collectWants(t *testing.T, pkg *lint.Package) map[string][]*regexp.Regexp {
	t.Helper()
	wants := make(map[string][]*regexp.Regexp)
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				idx := strings.Index(c.Text, "want `")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, m := range wantRe.FindAllStringSubmatch(c.Text[idx:], -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, m[1], err)
					}
					wants[key] = append(wants[key], re)
				}
			}
		}
	}
	return wants
}

// runFixture loads one testdata/src package, runs the analyzers over it, and
// checks the diagnostics against the fixture's want comments in both
// directions: every want must be matched by a diagnostic on its line, and
// every diagnostic must be claimed by a want.
func runFixture(t *testing.T, name string, analyzers []*lint.Analyzer) {
	t.Helper()
	pkg, err := lint.LoadDir(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	diags := lint.Run([]*lint.Package{pkg}, analyzers)
	matchWants(t, diags, collectWants(t, pkg))
}

// runTreeFixture loads a fixture directory tree as a multi-package unit —
// subdirectories become subpackages importable from the root — and checks
// diagnostics against want comments gathered across every package. The
// module analyzers see all packages at once, so cross-package propagation is
// exercised for real.
func runTreeFixture(t *testing.T, name string, analyzers []*lint.Analyzer) {
	t.Helper()
	pkgs, err := lint.LoadTree(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("loading fixture tree %s: %v", name, err)
	}
	diags := lint.Run(pkgs, analyzers)
	wants := make(map[string][]*regexp.Regexp)
	for _, pkg := range pkgs {
		for key, res := range collectWants(t, pkg) {
			wants[key] = append(wants[key], res...)
		}
	}
	matchWants(t, diags, wants)
}

// matchWants reconciles diagnostics with want expectations in both
// directions, consuming wants as they match.
func matchWants(t *testing.T, diags []lint.Diagnostic, wants map[string][]*regexp.Regexp) {
	t.Helper()
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.File, d.Line)
		matched := -1
		for i, re := range wants[key] {
			if re.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		wants[key] = append(wants[key][:matched], wants[key][matched+1:]...)
	}
	for key, res := range wants {
		for _, re := range res {
			t.Errorf("%s: no diagnostic matching %q", key, re)
		}
	}
}

func TestInsecureRandFixture(t *testing.T) {
	runFixture(t, "insecurerand", []*lint.Analyzer{
		lint.InsecureRandAnalyzer(map[string]bool{"insecurerand": true}),
	})
}

func TestNoAllocFixture(t *testing.T) {
	runFixture(t, "noalloc", []*lint.Analyzer{lint.NoAllocAnalyzer()})
}

func TestMutexGuardFixture(t *testing.T) {
	runFixture(t, "mutexguard", []*lint.Analyzer{lint.MutexGuardAnalyzer()})
}

func TestNoRetainFixture(t *testing.T) {
	runFixture(t, "noretain", []*lint.Analyzer{lint.NoRetainAnalyzer()})
}

func TestReadOnlyInputFixture(t *testing.T) {
	runFixture(t, "readonlyinput", []*lint.Analyzer{lint.ReadOnlyInputAnalyzer()})
}

// TestTaintFixture is the acceptance fixture for the secret-taint pass: the
// annotated source lives in taint/vault, the leaks in the parent package, so
// every finding proves cross-package summary propagation — including the
// seeded trace-event leak that crosses two call hops.
func TestTaintFixture(t *testing.T) {
	runTreeFixture(t, "taint", []*lint.Analyzer{lint.TaintAnalyzer()})
}

func TestLockOrderFixture(t *testing.T) {
	runTreeFixture(t, "lockorder", []*lint.Analyzer{lint.LockOrderAnalyzer()})
}

func TestAtomicMixFixture(t *testing.T) {
	runTreeFixture(t, "atomicmix", []*lint.Analyzer{lint.AtomicMixAnalyzer()})
}

// TestDirectiveValidation checks that malformed //lint:allow directives are
// themselves diagnostics and do not suppress anything.
func TestDirectiveValidation(t *testing.T) {
	pkg, err := lint.LoadDir(filepath.Join("testdata", "src", "directive"))
	if err != nil {
		t.Fatalf("loading fixture directive: %v", err)
	}
	diags := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{lint.NoAllocAnalyzer()})

	expect := []struct {
		analyzer string
		pattern  string
	}{
		{"directive", "no justification"},
		{"directive", `unknown analyzer "nosuchcheck"`},
		{"directive", "names no analyzer"},
		// The reasonless directive must not have suppressed the make it
		// annotates.
		{"noalloc", "make in noalloc function noReason allocates"},
	}
	for _, want := range expect {
		found := false
		for _, d := range diags {
			if d.Analyzer == want.analyzer && strings.Contains(d.Message, want.pattern) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no [%s] diagnostic containing %q in %v", want.analyzer, want.pattern, diags)
		}
	}
	if len(diags) != len(expect) {
		t.Errorf("got %d diagnostics, want %d: %v", len(diags), len(expect), diags)
	}
}
