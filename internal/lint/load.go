package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, parsed, and type-checked package ready for
// analysis.
type Package struct {
	// Path is the package's import path (or a synthetic path for fixture
	// directories loaded with LoadDir).
	Path string
	// Dir is the directory holding the package's sources.
	Dir string
	// Fset positions every file in the package.
	Fset *token.FileSet
	// Files are the parsed non-test source files.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info records the type checker's facts about Files.
	Info *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
}

// goList runs `go list -export -deps -json` in dir for the given patterns
// and returns the decoded package stream. Export data for every listed
// package (targets and dependencies alike) lands in the build cache, which
// is what lets the pure-stdlib gc importer resolve imports without
// re-typechecking the world.
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var pkgs []listedPackage
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter builds a go/types importer that resolves imports from the
// export-data files go list reported.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	})
}

// typecheck parses and type-checks one package directory's files.
func typecheck(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*Package, error) {
	files := make([]*ast.File, 0, len(goFiles))
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// Load loads, parses, and type-checks every package matching the go package
// patterns (e.g. "./..."), resolved relative to dir. Test files are not
// analyzed: the invariants the suite enforces are production data-path
// contracts, and tests legitimately use deterministic math/rand sources.
func Load(dir string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	var targets []listedPackage
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	pkgs := make([]*Package, 0, len(targets))
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		pkg, err := typecheck(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir loads a single directory of Go files as one package, resolving
// its (standard-library) imports through go list export data. This is the
// entry point for golden-fixture packages under testdata/, which the go
// tool itself refuses to enumerate.
func LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var goFiles []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		goFiles = append(goFiles, name)
	}
	sort.Strings(goFiles)
	if len(goFiles) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}

	// Parse once with a throwaway fileset to discover the import set, then
	// materialize export data for it.
	probeFset := token.NewFileSet()
	imports := make(map[string]bool)
	for _, name := range goFiles {
		f, err := parser.ParseFile(probeFset, filepath.Join(dir, name), nil, parser.ImportsOnly)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				return nil, fmt.Errorf("lint: %w", err)
			}
			if path != "unsafe" {
				imports[path] = true
			}
		}
	}
	exports := make(map[string]string)
	if len(imports) > 0 {
		patterns := make([]string, 0, len(imports))
		for p := range imports {
			patterns = append(patterns, p)
		}
		sort.Strings(patterns)
		listed, err := goList(dir, patterns)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	fset := token.NewFileSet()
	return typecheck(fset, exportImporter(fset, exports), filepath.Base(dir), dir, goFiles)
}

// ModulePath reports the module path of the main module rooted at (or
// above) dir, via `go list -m`.
func ModulePath(dir string) (string, error) {
	cmd := exec.Command("go", "list", "-m")
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("lint: go list -m: %w\n%s", err, stderr.String())
	}
	return strings.TrimSpace(stdout.String()), nil
}
