package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, parsed, and type-checked package ready for
// analysis.
type Package struct {
	// Path is the package's import path (or a synthetic path for fixture
	// directories loaded with LoadDir).
	Path string
	// Dir is the directory holding the package's sources.
	Dir string
	// Fset positions every file in the package.
	Fset *token.FileSet
	// Files are the parsed non-test source files.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info records the type checker's facts about Files.
	Info *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Imports    []string
	DepOnly    bool
}

// goList runs `go list -export -deps -json` in dir for the given patterns
// and returns the decoded package stream. Export data for every listed
// package (targets and dependencies alike) lands in the build cache, which
// is what lets the pure-stdlib gc importer resolve imports without
// re-typechecking the world.
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Imports,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var pkgs []listedPackage
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter builds a go/types importer that resolves imports from the
// export-data files go list reported.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	})
}

// typecheck parses and type-checks one package directory's files.
func typecheck(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*Package, error) {
	files := make([]*ast.File, 0, len(goFiles))
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// Load loads, parses, and type-checks every package matching the go package
// patterns (e.g. "./..."), resolved relative to dir. Test files are not
// analyzed: the invariants the suite enforces are production data-path
// contracts, and tests legitimately use deterministic math/rand sources.
func Load(dir string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	var targets []listedPackage
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	// Type-check the target packages in dependency order, resolving imports
	// of other targets to their source-checked types rather than export
	// data. Interprocedural analyzers depend on this: a *types.Func or field
	// object reached from an importing package must be the same object the
	// defining package's own check produced, or cross-package summaries and
	// annotations would silently fail to line up.
	byPath := make(map[string]listedPackage, len(targets))
	for _, t := range targets {
		if len(t.GoFiles) > 0 {
			byPath[t.ImportPath] = t
		}
	}
	fset := token.NewFileSet()
	checked := make(map[string]*Package, len(targets))
	expImp := exportImporter(fset, exports)
	imp := importerFunc(func(path string) (*types.Package, error) {
		if pkg, ok := checked[path]; ok {
			return pkg.Types, nil
		}
		return expImp.Import(path)
	})
	var pkgs []*Package
	for len(pkgs) < len(byPath) {
		progressed := false
		for _, t := range targets {
			if len(t.GoFiles) == 0 || checked[t.ImportPath] != nil {
				continue
			}
			ready := true
			for _, dep := range t.Imports {
				if _, isTarget := byPath[dep]; isTarget && checked[dep] == nil {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			pkg, err := typecheck(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
			if err != nil {
				return nil, err
			}
			checked[t.ImportPath] = pkg
			pkgs = append(pkgs, pkg)
			progressed = true
		}
		if !progressed {
			return nil, fmt.Errorf("lint: import cycle among %d unprocessed packages", len(byPath)-len(pkgs))
		}
	}
	return pkgs, nil
}

// LoadDir loads a single directory of Go files as one package, resolving
// its (standard-library) imports through go list export data. This is the
// entry point for golden-fixture packages under testdata/, which the go
// tool itself refuses to enumerate.
func LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var goFiles []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		goFiles = append(goFiles, name)
	}
	sort.Strings(goFiles)
	if len(goFiles) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}

	// Parse once with a throwaway fileset to discover the import set, then
	// materialize export data for it.
	probeFset := token.NewFileSet()
	imports := make(map[string]bool)
	for _, name := range goFiles {
		f, err := parser.ParseFile(probeFset, filepath.Join(dir, name), nil, parser.ImportsOnly)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				return nil, fmt.Errorf("lint: %w", err)
			}
			if path != "unsafe" {
				imports[path] = true
			}
		}
	}
	exports := make(map[string]string)
	if len(imports) > 0 {
		patterns := make([]string, 0, len(imports))
		for p := range imports {
			patterns = append(patterns, p)
		}
		sort.Strings(patterns)
		listed, err := goList(dir, patterns)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	fset := token.NewFileSet()
	return typecheck(fset, exportImporter(fset, exports), filepath.Base(dir), dir, goFiles)
}

// LoadTree loads a directory and every nested subdirectory holding Go files
// as one multi-package fixture: each directory becomes a package whose
// import path is the root's base name plus the relative subdirectory, so a
// file in testdata/src/taint may `import "taint/vault"` to reach its
// sibling testdata/src/taint/vault. Packages are type-checked in dependency
// order with fixture-internal imports resolved against the already-checked
// siblings and everything else against go list export data. This is how the
// golden fixtures exercise cross-package analysis (taint propagation, lock
// graphs) that the go tool's refusal to enumerate testdata would otherwise
// make untestable.
func LoadTree(root string) ([]*Package, error) {
	base := filepath.Base(root)
	type dirInfo struct {
		path    string // fixture import path, e.g. "taint/vault"
		dir     string
		goFiles []string
		imports map[string]bool
	}
	var dirs []*dirInfo
	probeFset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return err
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		info := &dirInfo{dir: path, imports: make(map[string]bool)}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		if rel == "." {
			info.path = base
		} else {
			info.path = base + "/" + filepath.ToSlash(rel)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			info.goFiles = append(info.goFiles, name)
			f, err := parser.ParseFile(probeFset, filepath.Join(path, name), nil, parser.ImportsOnly)
			if err != nil {
				return fmt.Errorf("lint: %w", err)
			}
			for _, spec := range f.Imports {
				p, err := strconv.Unquote(spec.Path.Value)
				if err != nil {
					return fmt.Errorf("lint: %w", err)
				}
				if p != "unsafe" {
					info.imports[p] = true
				}
			}
		}
		if len(info.goFiles) > 0 {
			sort.Strings(info.goFiles)
			dirs = append(dirs, info)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	if len(dirs) == 0 {
		return nil, fmt.Errorf("lint: no Go files under %s", root)
	}

	internal := make(map[string]*dirInfo, len(dirs))
	for _, d := range dirs {
		internal[d.path] = d
	}
	external := make(map[string]bool)
	for _, d := range dirs {
		for imp := range d.imports {
			if internal[imp] == nil {
				external[imp] = true
			}
		}
	}
	exports := make(map[string]string)
	if len(external) > 0 {
		patterns := make([]string, 0, len(external))
		for p := range external {
			patterns = append(patterns, p)
		}
		sort.Strings(patterns)
		listed, err := goList(root, patterns)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}

	// Type-check in dependency order: a directory is ready once every
	// fixture-internal import it names has been checked.
	fset := token.NewFileSet()
	checked := make(map[string]*Package, len(dirs))
	expImp := exportImporter(fset, exports)
	imp := importerFunc(func(path string) (*types.Package, error) {
		if pkg, ok := checked[path]; ok {
			return pkg.Types, nil
		}
		return expImp.Import(path)
	})
	var pkgs []*Package
	for len(pkgs) < len(dirs) {
		progressed := false
		for _, d := range dirs {
			if checked[d.path] != nil {
				continue
			}
			ready := true
			for i := range d.imports {
				if internal[i] != nil && checked[i] == nil {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			pkg, err := typecheck(fset, imp, d.path, d.dir, d.goFiles)
			if err != nil {
				return nil, err
			}
			checked[d.path] = pkg
			pkgs = append(pkgs, pkg)
			progressed = true
		}
		if !progressed {
			return nil, fmt.Errorf("lint: import cycle among fixture packages under %s", root)
		}
	}
	return pkgs, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// ModulePath reports the module path of the main module rooted at (or
// above) dir, via `go list -m`.
func ModulePath(dir string) (string, error) {
	cmd := exec.Command("go", "list", "-m")
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("lint: go list -m: %w\n%s", err, stderr.String())
	}
	return strings.TrimSpace(stdout.String()), nil
}
