package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
)

// SARIF (Static Analysis Results Interchange Format) 2.1.0 output, the
// format code-scanning services ingest. The encoder is deliberately minimal:
// one run, one rule per analyzer, one result per diagnostic, all locations
// repository-relative so uploads resolve against the checkout.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// sarifSyntheticRules documents the diagnostics the framework itself emits,
// outside any registered analyzer.
var sarifSyntheticRules = map[string]string{
	directiveAnalyzerName:  "lint:allow directives must be well-formed and name a known analyzer",
	staleAllowAnalyzerName: "lint:allow directives must suppress at least one diagnostic",
}

// WriteSARIF renders diags as a SARIF 2.1.0 log on w. Every analyzer in
// analyzers becomes a rule whether or not it fired, so the rule catalog is
// stable across runs; framework diagnostics (directive validation,
// stale-allow) get synthetic rules appended on demand. File paths are
// emitted slash-separated relative to the repository root the linter ran in.
func WriteSARIF(w io.Writer, analyzers []*Analyzer, diags []Diagnostic) error {
	rules := make([]sarifRule, 0, len(analyzers)+2)
	index := make(map[string]int, len(analyzers)+2)
	addRule := func(id, doc string) {
		if _, ok := index[id]; ok {
			return
		}
		index[id] = len(rules)
		rules = append(rules, sarifRule{ID: id, ShortDescription: sarifText{Text: doc}})
	}
	for _, a := range analyzers {
		addRule(a.Name, a.Doc)
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		if _, ok := index[d.Analyzer]; !ok {
			doc := sarifSyntheticRules[d.Analyzer]
			if doc == "" {
				doc = "diagnostic emitted outside the registered analyzer suite"
			}
			addRule(d.Analyzer, doc)
		}
		results = append(results, sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: index[d.Analyzer],
			Level:     "error",
			Message:   sarifText{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{
						URI:       filepath.ToSlash(d.File),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{StartLine: d.Line, StartColumn: d.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:           "remicss-lint",
				InformationURI: "https://github.com/remicss/remicss",
				Rules:          rules,
			}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&log)
}
