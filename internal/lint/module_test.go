package lint_test

import (
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"remicss/internal/lint"
)

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test working directory")
		}
		dir = parent
	}
}

// TestModuleIsClean runs the full analyzer suite over the real module and
// requires zero diagnostics — the same gate CI applies via
// cmd/remicss-lint. Every invariant exception in the tree must carry a
// justified //lint:allow annotation for this to pass.
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping go-list-backed module lint in -short mode")
	}
	root := moduleRoot(t)
	mod, err := lint.ModulePath(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.Load(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.Run(pkgs, lint.DefaultAnalyzers(mod))
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// annotationBaseline is the marker census at the time the static-analysis
// suite landed. The clean-module gate above is only as strong as the
// annotation set feeding it — deleting a //remicss:secret shrinks the taint
// perimeter and silences findings without any diagnostic — so the counts
// may grow but must never drop. Deliberate removals (dead code deleted,
// an invariant genuinely retired) lower the baseline here in the same
// change, with the reasoning in the commit.
var annotationBaseline = map[string]int{
	"//remicss:secret":  39,
	"//remicss:noalloc": 51,
	"guarded by ":       20,
}

// TestAnnotationSetNonShrinking counts invariant annotations across the
// module's non-test sources — excluding internal/lint itself, whose
// documentation mentions the markers — and fails if any class fell below
// the recorded baseline.
func TestAnnotationSetNonShrinking(t *testing.T) {
	root := moduleRoot(t)
	counts := make(map[string]int, len(annotationBaseline))
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, rerr := filepath.Rel(root, path)
		if rerr != nil {
			return rerr
		}
		rel = filepath.ToSlash(rel)
		if d.IsDir() {
			if d.Name() == "testdata" || rel == "internal/lint" || strings.HasPrefix(d.Name(), ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		for marker := range annotationBaseline {
			counts[marker] += strings.Count(string(src), marker)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for marker, floor := range annotationBaseline {
		if counts[marker] < floor {
			t.Errorf("%s annotations: %d in tree, baseline %d — the invariant perimeter shrank; restore the annotations or lower the baseline with justification",
				marker, counts[marker], floor)
		}
	}
}
