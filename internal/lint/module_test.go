package lint_test

import (
	"os"
	"path/filepath"
	"testing"

	"remicss/internal/lint"
)

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test working directory")
		}
		dir = parent
	}
}

// TestModuleIsClean runs the full analyzer suite over the real module and
// requires zero diagnostics — the same gate CI applies via
// cmd/remicss-lint. Every invariant exception in the tree must carry a
// justified //lint:allow annotation for this to pass.
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping go-list-backed module lint in -short mode")
	}
	root := moduleRoot(t)
	mod, err := lint.ModulePath(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.Load(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.Run(pkgs, lint.DefaultAnalyzers(mod))
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
