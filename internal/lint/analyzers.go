package lint

// DefaultAnalyzers returns the full remicss analyzer suite configured for
// the module rooted at modulePath: the secret-bearing package set for
// insecure-rand is derived from the module path, and the annotation-driven
// analyzers (noalloc, mutexguard, noretain, readonly-input) apply
// everywhere.
func DefaultAnalyzers(modulePath string) []*Analyzer {
	secret := map[string]bool{
		modulePath:                       true,
		modulePath + "/internal/remicss": true,
		modulePath + "/internal/shamir":  true,
		modulePath + "/internal/sharing": true,
		modulePath + "/internal/blakley": true,
		modulePath + "/internal/drbg":    true,
		modulePath + "/internal/wire":    true,
	}
	return []*Analyzer{
		InsecureRandAnalyzer(secret),
		NoAllocAnalyzer(),
		MutexGuardAnalyzer(),
		NoRetainAnalyzer(),
		ReadOnlyInputAnalyzer(),
		TaintAnalyzer(),
		LockOrderAnalyzer(),
		AtomicMixAnalyzer(),
	}
}
