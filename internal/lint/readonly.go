package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ReadOnlyInputAnalyzer enforces the read-only-input contract of the wire
// decoders: Unmarshal and UnmarshalReport parse datagrams in place from
// buffers owned by the transport, so writing through the input slice (even
// transiently, e.g. zeroing the checksum field before re-computing it)
// corrupts buffers shared with concurrent readers.
//
// Checked functions are those whose name starts with "Unmarshal" and that
// take a []byte parameter, plus any function annotated //remicss:readonly
// with a []byte parameter. The first []byte parameter is tracked through
// local aliases (ident, parenthesization, subslicing), and the analyzer
// reports element writes, copy/clear/append with an alias as destination,
// and binary.ByteOrder Put* calls targeting an alias.
func ReadOnlyInputAnalyzer() *Analyzer {
	a := &Analyzer{
		Name: "readonly-input",
		Doc:  "Unmarshal-shaped functions must not write through their input slice",
	}
	a.Run = func(pass *Pass) {
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				param := readOnlyParam(pass, fd)
				if param == nil {
					continue
				}
				checkReadOnly(pass, fd, param)
			}
		}
	}
	return a
}

// readOnlyParam returns the input []byte parameter object when fd is an
// Unmarshal-shaped or //remicss:readonly-annotated function, nil otherwise.
func readOnlyParam(pass *Pass, fd *ast.FuncDecl) types.Object {
	if !strings.HasPrefix(fd.Name.Name, "Unmarshal") && !hasMarker(fd.Doc, "readonly") {
		return nil
	}
	sig, ok := pass.TypeOf(fd.Name).(*types.Signature)
	if !ok {
		return nil
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isByteSlice(params.At(i).Type()) {
			return params.At(i)
		}
	}
	return nil
}

// roAlias reports whether e aliases the tracked input parameter: the
// parameter itself, a local bound to it, or a subslice of either.
func roAlias(pass *Pass, aliases aliasSet, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return aliases[pass.Info.Uses[e]]
	case *ast.ParenExpr:
		return roAlias(pass, aliases, e.X)
	case *ast.SliceExpr:
		return roAlias(pass, aliases, e.X)
	}
	return false
}

// checkReadOnly walks fd's body tracking aliases of the input parameter and
// reporting writes through them.
func checkReadOnly(pass *Pass, fd *ast.FuncDecl, param types.Object) {
	aliases := aliasSet{param: true}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if idx, ok := lhs.(*ast.IndexExpr); ok && roAlias(pass, aliases, idx.X) {
					pass.Reportf(lhs.Pos(), "%s writes to its input slice: the read-only contract forbids mutating the caller's buffer", fd.Name.Name)
				}
			}
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					id, ok := n.Lhs[i].(*ast.Ident)
					if !ok {
						continue
					}
					obj := pass.Info.Defs[id]
					if obj == nil {
						obj = pass.Info.Uses[id]
					}
					if obj == nil || obj == param {
						continue
					}
					if roAlias(pass, aliases, n.Rhs[i]) {
						aliases[obj] = true
					} else {
						delete(aliases, obj)
					}
				}
			}
		case *ast.CallExpr:
			checkReadOnlyCall(pass, fd, aliases, n)
		}
		return true
	})
}

// checkReadOnlyCall flags builtins and ByteOrder Put* methods that write
// into an alias of the input slice.
func checkReadOnlyCall(pass *Pass, fd *ast.FuncDecl, aliases aliasSet, call *ast.CallExpr) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "copy", "append", "clear":
				if len(call.Args) > 0 && roAlias(pass, aliases, call.Args[0]) {
					pass.Reportf(call.Args[0].Pos(), "%s passes its input slice to %s as the destination, which writes to the caller's buffer", fd.Name.Name, b.Name())
				}
			}
			return
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && strings.HasPrefix(sel.Sel.Name, "Put") {
		if len(call.Args) > 0 && roAlias(pass, aliases, call.Args[0]) {
			pass.Reportf(call.Args[0].Pos(), "%s writes to its input slice via %s: the read-only contract forbids mutating the caller's buffer", fd.Name.Name, sel.Sel.Name)
		}
	}
}
