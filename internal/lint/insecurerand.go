package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// InsecureRandAnalyzer enforces the secrecy boundary around randomness.
// Shamir coefficients, XOR pads, and Blakley hyperplanes are only
// information-theoretically hiding when drawn from uniform cryptographic
// randomness, so:
//
//  1. Packages in secretPkgs (the share-generating and wire layers) must
//     not import math/rand or math/rand/v2 at all.
//  2. In every package, a math/rand value must not flow into an
//     io.Reader-shaped slot — a parameter, assignment target, conversion,
//     struct field, or return whose type is an interface with a Read
//     method. That is exactly how the sharing schemes consume entropy
//     (NewSplitter, NewXOR, NewAuto, NewSharingScheme all take io.Reader),
//     so the rule catches seedable simulation rngs leaking into share
//     generation no matter which constructor they pass through.
//
// Deterministic simulations, benchmarks, and choosers that genuinely need
// seedable randomness must say so: //lint:allow insecure-rand <reason>.
func InsecureRandAnalyzer(secretPkgs map[string]bool) *Analyzer {
	a := &Analyzer{
		Name: "insecure-rand",
		Doc:  "math/rand must not appear in secret-bearing packages or flow into randomness-consuming io.Reader slots",
	}
	a.Run = func(pass *Pass) {
		if secretPkgs[pass.Pkg.Path()] {
			for _, file := range pass.Files {
				for _, spec := range file.Imports {
					path, err := strconv.Unquote(spec.Path.Value)
					if err != nil {
						continue
					}
					if path == "math/rand" || path == "math/rand/v2" {
						pass.Reportf(spec.Pos(),
							"import of %s in secret-bearing package %s: share material must be generated from crypto/rand (//lint:allow insecure-rand <reason> for non-secret uses)",
							path, pass.Pkg.Path())
					}
				}
			}
		}
		for _, file := range pass.Files {
			checkRandFlows(pass, file)
		}
	}
	return a
}

// isMathRandType reports whether t (possibly behind a pointer) is declared
// in math/rand or math/rand/v2.
func isMathRandType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return false
	}
	return pkg.Path() == "math/rand" || pkg.Path() == "math/rand/v2"
}

// isReaderShaped reports whether t is an interface whose method set
// includes Read — the shape through which the sharing schemes draw
// randomness.
func isReaderShaped(t types.Type) bool {
	if t == nil {
		return false
	}
	iface, ok := t.Underlying().(*types.Interface)
	if !ok {
		return false
	}
	for i := 0; i < iface.NumMethods(); i++ {
		if iface.Method(i).Name() == "Read" {
			return true
		}
	}
	return false
}

// checkRandFlow reports expr when it carries a math/rand value into a
// Reader-shaped destination type.
func checkRandFlow(pass *Pass, dst types.Type, expr ast.Expr) {
	if expr == nil || !isReaderShaped(dst) {
		return
	}
	if src := pass.TypeOf(expr); isMathRandType(src) {
		pass.Reportf(expr.Pos(),
			"math/rand value (%s) flows into randomness slot of type %s: share randomness must be cryptographic (//lint:allow insecure-rand <reason> for simulations)",
			pass.TypeOf(expr), dst)
	}
}

// checkRandFlows walks one file looking for math/rand values crossing into
// Reader-shaped slots through calls, conversions, assignments, declarations,
// composite literals, and returns.
func checkRandFlows(pass *Pass, file *ast.File) {
	// results tracks the result tuple of the innermost function, so return
	// statements know their destination types.
	var results []*types.Tuple
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body == nil {
				return false
			}
			if sig, ok := pass.TypeOf(n.Name).(*types.Signature); ok {
				results = append(results, sig.Results())
				ast.Inspect(n.Body, walk)
				results = results[:len(results)-1]
				return false
			}
		case *ast.FuncLit:
			if sig, ok := pass.TypeOf(n).(*types.Signature); ok {
				results = append(results, sig.Results())
				ast.Inspect(n.Body, walk)
				results = results[:len(results)-1]
				return false
			}
		case *ast.CallExpr:
			checkRandCall(pass, n)
		case *ast.AssignStmt:
			if n.Tok == token.ASSIGN && len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					checkRandFlow(pass, pass.TypeOf(n.Lhs[i]), n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if n.Type != nil {
				dst := pass.TypeOf(n.Type)
				for _, v := range n.Values {
					checkRandFlow(pass, dst, v)
				}
			}
		case *ast.CompositeLit:
			checkRandComposite(pass, n)
		case *ast.ReturnStmt:
			if len(results) == 0 {
				break
			}
			res := results[len(results)-1]
			if res != nil && len(n.Results) == res.Len() {
				for i, r := range n.Results {
					checkRandFlow(pass, res.At(i).Type(), r)
				}
			}
		}
		return true
	}
	ast.Inspect(file, walk)
}

// checkRandCall checks a call's arguments against its parameter types, and
// conversion expressions against their target type.
func checkRandCall(pass *Pass, call *ast.CallExpr) {
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			checkRandFlow(pass, tv.Type, call.Args[0])
		}
		return
	}
	sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return // builtin or invalid
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				param = params.At(params.Len() - 1).Type()
			} else if slice, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				param = slice.Elem()
			}
		case i < params.Len():
			param = params.At(i).Type()
		}
		checkRandFlow(pass, param, arg)
	}
}

// checkRandComposite checks composite literal elements against the field,
// element, or value types they initialize.
func checkRandComposite(pass *Pass, lit *ast.CompositeLit) {
	typ := pass.TypeOf(lit)
	if typ == nil {
		return
	}
	switch u := typ.Underlying().(type) {
	case *types.Struct:
		for i, elt := range lit.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if key, ok := kv.Key.(*ast.Ident); ok {
					for j := 0; j < u.NumFields(); j++ {
						if u.Field(j).Name() == key.Name {
							checkRandFlow(pass, u.Field(j).Type(), kv.Value)
							break
						}
					}
				}
			} else if i < u.NumFields() {
				checkRandFlow(pass, u.Field(i).Type(), elt)
			}
		}
	case *types.Map:
		for _, elt := range lit.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				checkRandFlow(pass, u.Elem(), kv.Value)
			}
		}
	case *types.Slice:
		for _, elt := range lit.Elts {
			if _, ok := elt.(*ast.KeyValueExpr); !ok {
				checkRandFlow(pass, u.Elem(), elt)
			}
		}
	}
}
