package lp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSimpleEquality(t *testing.T) {
	// minimize x0 + 2 x1 subject to x0 + x1 = 1: optimum x = (1, 0).
	sol, err := Solve(Problem{
		C: []float64{1, 2},
		A: [][]float64{{1, 1}},
		B: []float64{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(sol.Objective, 1, 1e-9) {
		t.Errorf("objective = %v, want 1", sol.Objective)
	}
	if !almostEqual(sol.X[0], 1, 1e-9) || !almostEqual(sol.X[1], 0, 1e-9) {
		t.Errorf("x = %v, want [1 0]", sol.X)
	}
}

func TestTwoConstraints(t *testing.T) {
	// minimize -x0 - x1 s.t. x0 + 2 x1 + s0 = 4; 3 x0 + x1 + s1 = 6.
	// Optimal vertex x = (1.6, 1.2), objective -2.8.
	sol, err := Solve(Problem{
		C: []float64{-1, -1, 0, 0},
		A: [][]float64{
			{1, 2, 1, 0},
			{3, 1, 0, 1},
		},
		B: []float64{4, 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(sol.Objective, -2.8, 1e-9) {
		t.Errorf("objective = %v, want -2.8", sol.Objective)
	}
	if !almostEqual(sol.X[0], 1.6, 1e-9) || !almostEqual(sol.X[1], 1.2, 1e-9) {
		t.Errorf("x = %v, want [1.6 1.2 0 0]", sol.X)
	}
}

func TestInfeasible(t *testing.T) {
	// x0 = 1 and x0 = 2 simultaneously.
	_, err := Solve(Problem{
		C: []float64{1},
		A: [][]float64{{1}, {1}},
		B: []float64{1, 2},
	})
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("got %v, want ErrInfeasible", err)
	}
}

func TestInfeasibleNegativeRHS(t *testing.T) {
	// x0 >= 0 with x0 = -1.
	_, err := Solve(Problem{
		C: []float64{1},
		A: [][]float64{{1}},
		B: []float64{-1},
	})
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("got %v, want ErrInfeasible", err)
	}
}

func TestUnbounded(t *testing.T) {
	// minimize -x0 s.t. x0 - x1 = 0: x0 = x1 can grow forever.
	_, err := Solve(Problem{
		C: []float64{-1, 0},
		A: [][]float64{{1, -1}},
		B: []float64{0},
	})
	if !errors.Is(err, ErrUnbounded) {
		t.Errorf("got %v, want ErrUnbounded", err)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// -x0 - x1 = -1 is x0 + x1 = 1 after normalization.
	sol, err := Solve(Problem{
		C: []float64{2, 1},
		A: [][]float64{{-1, -1}},
		B: []float64{-1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(sol.Objective, 1, 1e-9) {
		t.Errorf("objective = %v, want 1 (x1 = 1)", sol.Objective)
	}
}

func TestRedundantConstraint(t *testing.T) {
	// Duplicate rows must not break the solver.
	sol, err := Solve(Problem{
		C: []float64{1, 1},
		A: [][]float64{
			{1, 1},
			{2, 2},
		},
		B: []float64{1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(sol.Objective, 1, 1e-9) {
		t.Errorf("objective = %v, want 1", sol.Objective)
	}
}

func TestDegenerateVertex(t *testing.T) {
	// A degenerate problem that cycles under naive pivoting (Beale-like);
	// Bland's rule must terminate.
	sol, err := Solve(Problem{
		C: []float64{-0.75, 150, -0.02, 6, 0, 0, 0},
		A: [][]float64{
			{0.25, -60, -0.04, 9, 1, 0, 0},
			{0.5, -90, -0.02, 3, 0, 1, 0},
			{0, 0, 1, 0, 0, 0, 1},
		},
		B: []float64{0, 0, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(sol.Objective, -0.05, 1e-9) {
		t.Errorf("objective = %v, want -0.05", sol.Objective)
	}
}

func TestEqualityDistribution(t *testing.T) {
	// The schedule-shaped program: probabilities over 3 options with a mean
	// constraint. minimize cost with p sums to 1 and mean value fixed.
	// Options have value 1, 2, 3 and cost 0, 1, 0. Mean 2 can be hit with
	// p = (0.5, 0, 0.5) at cost 0.
	sol, err := Solve(Problem{
		C: []float64{0, 1, 0},
		A: [][]float64{
			{1, 1, 1},
			{1, 2, 3},
		},
		B: []float64{1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(sol.Objective, 0, 1e-9) {
		t.Errorf("objective = %v, want 0", sol.Objective)
	}
	if !almostEqual(sol.X[0], 0.5, 1e-9) || !almostEqual(sol.X[2], 0.5, 1e-9) {
		t.Errorf("x = %v, want [0.5 0 0.5]", sol.X)
	}
}

func TestValidation(t *testing.T) {
	cases := []struct {
		name string
		p    Problem
	}{
		{"no variables", Problem{}},
		{"row length mismatch", Problem{C: []float64{1}, A: [][]float64{{1, 2}}, B: []float64{1}}},
		{"rows vs rhs mismatch", Problem{C: []float64{1}, A: [][]float64{{1}}, B: []float64{1, 2}}},
		{"NaN cost", Problem{C: []float64{math.NaN()}, A: [][]float64{{1}}, B: []float64{1}}},
		{"Inf rhs", Problem{C: []float64{1}, A: [][]float64{{1}}, B: []float64{math.Inf(1)}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Solve(tc.p); !errors.Is(err, ErrBadProblem) {
				t.Errorf("got %v, want ErrBadProblem", err)
			}
		})
	}
}

// TestRandomProblemsAgainstEnumeration solves small random problems with
// bounded feasible regions and checks optimality against brute-force vertex
// enumeration.
func TestRandomProblemsAgainstEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		// Random transportation-style problem: 4 vars, 2 equality rows that
		// guarantee a bounded simplex (sum of all vars fixed).
		c := make([]float64, 4)
		for j := range c {
			c[j] = rng.Float64()*4 - 2
		}
		// Row 1: all ones, total mass 1. Row 2: random 0/1 pattern with mass
		// beta in [0, 1] of the subset.
		row2 := make([]float64, 4)
		nonzero := 0
		for j := range row2 {
			if rng.Intn(2) == 1 {
				row2[j] = 1
				nonzero++
			}
		}
		if nonzero == 0 || nonzero == 4 {
			continue
		}
		beta := rng.Float64()
		p := Problem{
			C: c,
			A: [][]float64{{1, 1, 1, 1}, row2},
			B: []float64{1, beta},
		}
		sol, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Feasibility of the returned point.
		for i, row := range p.A {
			var dot float64
			for j := range row {
				dot += row[j] * sol.X[j]
			}
			if !almostEqual(dot, p.B[i], 1e-7) {
				t.Fatalf("trial %d: constraint %d violated: %v != %v", trial, i, dot, p.B[i])
			}
		}
		for j, x := range sol.X {
			if x < -1e-9 {
				t.Fatalf("trial %d: x[%d] = %v negative", trial, j, x)
			}
		}
		// Optimality vs dense grid search over the 2-dof feasible region.
		best := gridMin(p, 200)
		if sol.Objective > best+1e-4 {
			t.Fatalf("trial %d: objective %v worse than grid min %v", trial, sol.Objective, best)
		}
	}
}

// gridMin scans feasible points of the two-constraint mass problem on a
// grid and returns the best objective found. Specific to the test's
// constraint structure (total mass 1, subset mass beta).
func gridMin(p Problem, steps int) float64 {
	best := math.Inf(1)
	inSubset := p.A[1]
	beta := p.B[1]
	// Split beta across subset vars and 1-beta across the rest, scanning
	// the two splits independently (2 vars per group at most here; general
	// grid over first var of each group).
	var sub, rest []int
	for j, v := range inSubset {
		if v == 1 {
			sub = append(sub, j)
		} else {
			rest = append(rest, j)
		}
	}
	for a := 0; a <= steps; a++ {
		fa := float64(a) / float64(steps)
		for b := 0; b <= steps; b++ {
			fb := float64(b) / float64(steps)
			x := make([]float64, 4)
			x[sub[0]] = fa * beta
			x[sub[len(sub)-1]] += (1 - fa) * beta
			x[rest[0]] = fb * (1 - beta)
			x[rest[len(rest)-1]] += (1 - fb) * (1 - beta)
			var obj float64
			for j := range x {
				obj += p.C[j] * x[j]
			}
			if obj < best {
				best = obj
			}
		}
	}
	return best
}

func BenchmarkSolveScheduleSized(b *testing.B) {
	// An 80-variable, 8-constraint problem, the size of the n=5 schedule LP.
	rng := rand.New(rand.NewSource(3))
	nVars, nRows := 80, 8
	c := make([]float64, nVars)
	for j := range c {
		c[j] = rng.Float64()
	}
	a := make([][]float64, nRows)
	rhs := make([]float64, nRows)
	a[0] = make([]float64, nVars)
	for j := range a[0] {
		a[0][j] = 1
	}
	rhs[0] = 1
	for i := 1; i < nRows; i++ {
		a[i] = make([]float64, nVars)
		for j := range a[i] {
			if rng.Intn(3) == 0 {
				a[i][j] = rng.Float64()
			}
		}
		// Make the row consistent with a known feasible uniform point.
		var dot float64
		for j := range a[i] {
			dot += a[i][j] / float64(nVars)
		}
		rhs[i] = dot
	}
	p := Problem{C: c, A: a, B: rhs}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDualsStrongDuality(t *testing.T) {
	// minimize -x0 - x1 s.t. x0 + 2 x1 + s0 = 4; 3 x0 + x1 + s1 = 6.
	p := Problem{
		C: []float64{-1, -1, 0, 0},
		A: [][]float64{
			{1, 2, 1, 0},
			{3, 1, 0, 1},
		},
		B: []float64{4, 6},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	// Strong duality: y·b = optimal objective.
	var yb float64
	for i := range p.B {
		yb += sol.Duals[i] * p.B[i]
	}
	if !almostEqual(yb, sol.Objective, 1e-9) {
		t.Errorf("y·b = %v, objective = %v", yb, sol.Objective)
	}
	// Dual feasibility for minimization with equality rows derived from
	// <= constraints via slacks: reduced costs of slacks are -y_i >= 0,
	// so duals must be <= 0 here... verify via perturbation instead:
	// raising b0 by eps should change the objective by ~duals[0]*eps.
	const eps = 1e-6
	p2 := Problem{C: p.C, A: p.A, B: []float64{4 + eps, 6}}
	sol2, err := Solve(p2)
	if err != nil {
		t.Fatal(err)
	}
	got := (sol2.Objective - sol.Objective) / eps
	if !almostEqual(got, sol.Duals[0], 1e-4) {
		t.Errorf("finite-difference dual %v, reported %v", got, sol.Duals[0])
	}
}

func TestDualsSignRestoredOnNegatedRows(t *testing.T) {
	// Same feasible set expressed with a negated row: -x0 - 2 x1 - s0 = -4.
	p := Problem{
		C: []float64{-1, -1, 0, 0},
		A: [][]float64{
			{-1, -2, -1, 0},
			{3, 1, 0, 1},
		},
		B: []float64{-4, 6},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	const eps = 1e-6
	p2 := Problem{C: p.C, A: p.A, B: []float64{-4 - eps, 6}}
	sol2, err := Solve(p2)
	if err != nil {
		t.Fatal(err)
	}
	got := (sol2.Objective - sol.Objective) / (-eps)
	if !almostEqual(got, sol.Duals[0], 1e-4) {
		t.Errorf("finite-difference dual %v, reported %v", got, sol.Duals[0])
	}
}
