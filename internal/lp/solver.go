package lp

import (
	"fmt"
	"math"
)

// Tier reports how much prior work a solve was able to reuse. Ordered from
// most to least reuse.
type Tier int

// Solve tiers.
const (
	// TierReuse: the retained tableau was already factored in the prior
	// basis and the constraint data (A, B) was unchanged — only the
	// objective moved, so phase 2 re-ran from the prior optimal vertex.
	TierReuse Tier = iota
	// TierRefresh: A unchanged but B moved; the right-hand side was
	// recomputed through the retained B^{-1} and phase 2 re-ran.
	TierRefresh
	// TierRefactor: the prior basis was re-pivoted onto a freshly built
	// tableau (A changed or the retained tableau belonged to another
	// basis), then phase 2 re-ran. Still skips phase 1.
	TierRefactor
	// TierCold: full two-phase solve from scratch.
	TierCold
)

// String implements fmt.Stringer.
func (t Tier) String() string {
	switch t {
	case TierReuse:
		return "reuse"
	case TierRefresh:
		return "refresh"
	case TierRefactor:
		return "refactor"
	case TierCold:
		return "cold"
	default:
		return fmt.Sprintf("tier(%d)", int(t))
	}
}

// Stats describes the most recent solve on a Solver.
type Stats struct {
	// Pivots counts simplex pivots across both phases of the solve.
	Pivots int
	// Tier is the reuse level the solve achieved.
	Tier Tier
}

// Basis is an opaque snapshot of the optimal basis of a solved problem,
// returned by Solver.Solve and Solver.WarmSolve and accepted by WarmSolve
// as the starting point for a perturbed re-solve.
type Basis struct {
	vars []int
	n, m int
}

// Solver runs the two-phase simplex method while retaining the factored
// tableau and basis between calls, so that re-solving a perturbed problem
// can skip phase 1 (and, when only the objective moved, skip factorization
// entirely). A Solver is not safe for concurrent use; its retained state is
// exactly one factorization.
type Solver struct {
	t     tableau
	signs []float64
	a     [][]float64 // A at factorization time (deep copy)
	b     []float64   // B at factorization time
	n, m  int
	valid bool

	maxIter int // simplex iteration cap; test hook, 0 = defaultMaxIterations
	stats   Stats
}

// NewSolver returns an empty solver with no retained factorization.
func NewSolver() *Solver {
	return &Solver{}
}

// LastStats reports the pivot count and reuse tier of the most recent
// (Warm)Solve call.
func (s *Solver) LastStats() Stats { return s.stats }

func (s *Solver) iterationCap() int {
	if s.maxIter > 0 {
		return s.maxIter
	}
	return defaultMaxIterations
}

// Solve runs a full two-phase solve and retains the resulting factorization
// for later warm starts. The returned Basis snapshots the optimal basis.
func (s *Solver) Solve(p Problem) (Solution, *Basis, error) {
	if err := p.validate(); err != nil {
		return Solution{}, nil, err
	}
	return s.cold(p)
}

// WarmSolve re-solves a problem starting from the basis of a previous solve.
// It picks the cheapest applicable tier: if the constraint matrix is
// unchanged since the retained factorization it reuses the tableau directly
// (recomputing the right-hand side through the retained B^{-1} when B
// moved); otherwise it re-pivots the prior basis onto a fresh tableau; and
// whenever the prior basis is unusable — shape change, singular basis,
// primal infeasible at the new B — it falls back to a cold two-phase solve.
// A nil prev is equivalent to Solve.
func (s *Solver) WarmSolve(prev *Basis, p Problem) (Solution, *Basis, error) {
	if err := p.validate(); err != nil {
		return Solution{}, nil, err
	}
	n, m := len(p.C), len(p.A)
	if prev == nil || prev.n != n || prev.m != m {
		return s.cold(p)
	}

	if s.valid && s.n == n && s.m == m && matEqual(s.a, p.A) && intsEqual(prev.vars, s.t.basis) {
		tier := TierReuse
		if !floatsEqual(s.b, p.B) {
			if !s.refreshRHS(p.B) {
				return s.cold(p) // prior basis primal infeasible at new B
			}
			tier = TierRefresh
		}
		return s.phase2(p, tier)
	}

	if sol, basis, err, ok := s.refactor(prev, p); ok {
		return sol, basis, err
	}
	return s.cold(p)
}

// cold performs the full two-phase solve, replacing the retained state.
func (s *Solver) cold(p Problem) (Solution, *Basis, error) {
	n := len(p.C)
	s.factor(p)

	// Phase 1: minimize the sum of artificial variables.
	phase1Cost := make([]float64, s.t.cols)
	for j := n; j < s.t.cols; j++ {
		phase1Cost[j] = 1
	}
	pivots, err := s.t.optimize(phase1Cost, s.t.cols, s.iterationCap())
	if err != nil {
		// Phase 1 is bounded below by zero, so unboundedness here is a bug.
		s.valid = false
		return Solution{}, nil, fmt.Errorf("phase 1: %w", err)
	}
	if obj := s.t.objective(phase1Cost); obj > feasibilityTolerance {
		s.valid = false
		return Solution{}, nil, fmt.Errorf("%w: phase-1 objective %g", ErrInfeasible, obj)
	}

	// Drive any remaining artificial variables out of the basis; rows where
	// that is impossible are redundant constraints and are harmless.
	s.t.expelArtificials(n)

	sol, basis, err := s.phase2(p, TierCold)
	s.stats.Pivots += pivots // fold phase-1 pivots into the solve's total
	return sol, basis, err
}

// factor builds the initial normalized tableau (original columns, one
// artificial per row, b >= 0 enforced by row negation) and records copies
// of A and B for later change detection.
func (s *Solver) factor(p Problem) {
	n := len(p.C)
	m := len(p.A)
	s.t = tableau{
		rows:  make([][]float64, m),
		basis: make([]int, m),
		cols:  n + m,
	}
	s.signs = make([]float64, m)
	s.a = make([][]float64, m)
	s.b = make([]float64, m)
	for i := 0; i < m; i++ {
		row := make([]float64, s.t.cols+1)
		sign := 1.0
		if p.B[i] < 0 {
			sign = -1
		}
		s.signs[i] = sign
		for j := 0; j < n; j++ {
			row[j] = sign * p.A[i][j]
		}
		row[n+i] = 1
		row[s.t.cols] = sign * p.B[i]
		s.t.rows[i] = row
		s.t.basis[i] = n + i

		s.a[i] = append([]float64(nil), p.A[i]...)
		s.b[i] = p.B[i]
	}
	s.n, s.m = n, m
	s.valid = true
}

// refreshRHS recomputes the tableau's right-hand side for a new B through
// the retained B^{-1} (held in the artificial columns n..n+m-1). It reports
// false — leaving the tableau unusable for warm continuation — if the prior
// basis is primal infeasible at the new B, or if a redundant row (basic
// artificial) would need a nonzero level, which makes the new system
// inconsistent under the retained basis.
func (s *Solver) refreshRHS(bNew []float64) bool {
	n, m := s.n, s.m
	rhs := make([]float64, m)
	for i := 0; i < m; i++ {
		var v float64
		for j := 0; j < m; j++ {
			if c := s.t.rows[i][n+j]; c != 0 {
				v += c * s.signs[j] * bNew[j]
			}
		}
		rhs[i] = v
	}
	for i, v := range rhs {
		if v < -feasibilityTolerance {
			return false
		}
		if s.t.basis[i] >= n && v > feasibilityTolerance {
			return false
		}
		if v < 0 {
			rhs[i] = 0
		}
	}
	for i := range s.t.rows {
		s.t.rows[i][s.t.cols] = rhs[i]
	}
	copy(s.b, bNew)
	return true
}

// refactor rebuilds a fresh tableau for p and pivots the prior basis into
// it, skipping phase 1. The final bool reports whether the basis was usable
// (nonsingular and primal feasible at p.B); when false the caller should
// fall back to a cold solve and the other return values are meaningless.
func (s *Solver) refactor(prev *Basis, p Problem) (Solution, *Basis, error, bool) {
	s.factor(p)
	n := s.n
	for i, v := range prev.vars {
		if v >= n || v < 0 {
			continue // artificial stays basic in this row (redundant row)
		}
		if s.t.isBasic(v) {
			continue // duplicate entry in a degenerate basis; keep first
		}
		if math.Abs(s.t.rows[i][v]) <= pivotTolerance {
			s.valid = false
			return Solution{}, nil, nil, false // singular basis for this A
		}
		s.t.pivot(i, v)
	}
	for i, row := range s.t.rows {
		rhs := row[s.t.cols]
		if rhs < -feasibilityTolerance {
			s.valid = false
			return Solution{}, nil, nil, false // primal infeasible
		}
		if s.t.basis[i] >= n && rhs > feasibilityTolerance {
			s.valid = false
			return Solution{}, nil, nil, false // inconsistent redundant row
		}
		if rhs < 0 {
			row[s.t.cols] = 0
		}
	}
	sol, basis, err := s.phase2(p, TierRefactor)
	return sol, basis, err, true
}

// phase2 minimizes the real objective over the original columns from the
// tableau's current basis, then extracts the solution, duals, and a basis
// snapshot. It records the solve stats for the given tier.
func (s *Solver) phase2(p Problem, tier Tier) (Solution, *Basis, error) {
	n, m := s.n, s.m
	phase2Cost := make([]float64, s.t.cols)
	copy(phase2Cost, p.C)
	pivots, err := s.t.optimize(phase2Cost, n, s.iterationCap())
	s.stats = Stats{Pivots: pivots, Tier: tier}
	if err != nil {
		s.valid = false
		return Solution{}, nil, err
	}

	x := make([]float64, n)
	for i, v := range s.t.basis {
		if v < n {
			x[v] = s.t.rows[i][s.t.cols]
		}
	}
	var obj float64
	for j := range x {
		obj += p.C[j] * x[j]
	}

	// Duals from the artificial columns: column n+i of the tableau holds
	// B^{-1} e_i, so y_i = c_B · rows[·][n+i]. Undo the row normalization
	// signs so duals refer to the caller's constraints.
	duals := make([]float64, m)
	for i := 0; i < m; i++ {
		var y float64
		for r, v := range s.t.basis {
			if v < n && phase2Cost[v] != 0 {
				y += phase2Cost[v] * s.t.rows[r][n+i]
			}
		}
		duals[i] = s.signs[i] * y
	}

	basis := &Basis{vars: append([]int(nil), s.t.basis...), n: n, m: m}
	return Solution{X: x, Objective: obj, Duals: duals}, basis, nil
}

func matEqual(a [][]float64, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !floatsEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

func floatsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
