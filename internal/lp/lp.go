// Package lp implements a dense two-phase primal simplex solver for linear
// programs in standard equality form:
//
//	minimize    c·x
//	subject to  A x = b,  x >= 0.
//
// It exists to solve the share-schedule programs of the paper's Sections
// IV-B and IV-D, which are small (tens of variables for n = 5 channels) and
// dense, so a textbook tableau method with Bland's anti-cycling rule is the
// right tool. Inequality constraints can be expressed by the caller with
// explicit slack variables; the schedule programs are naturally equalities.
//
// Two entry points exist. Solve is the one-shot API. Solver retains the
// factored tableau and basis between calls so that a re-solve of a
// perturbed problem (the adaptation path: one channel's (z, l, d, r) moved,
// shifting the objective or the right-hand side) re-enters the simplex from
// the prior optimal basis and converges in a handful of pivots instead of a
// full two-phase run — see Solver.WarmSolve.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Solver failure modes.
var (
	// ErrInfeasible means no x >= 0 satisfies A x = b.
	ErrInfeasible = errors.New("lp: infeasible")
	// ErrUnbounded means the objective decreases without bound.
	ErrUnbounded = errors.New("lp: unbounded")
	// ErrBadProblem means the problem dimensions are inconsistent.
	ErrBadProblem = errors.New("lp: malformed problem")
	// ErrIterationLimit means the simplex hit its iteration cap. Bland's
	// rule guarantees termination, so this indicates either a logic error
	// or numerical cycling; warm-start debugging distinguishes it from
	// ErrInfeasible by this sentinel. The wrapped message carries the
	// iteration count.
	ErrIterationLimit = errors.New("lp: iteration limit reached")
)

// pivotTolerance distinguishes zero from rounding noise during pivoting.
const pivotTolerance = 1e-9

// feasibilityTolerance bounds the acceptable phase-1 objective for a
// feasible problem.
const feasibilityTolerance = 1e-7

// defaultMaxIterations caps simplex iterations as a defense against bugs.
const defaultMaxIterations = 100000

// Problem is a linear program in standard form: minimize C·x subject to
// A x = B and x >= 0. Every row of A must have len(C) entries.
type Problem struct {
	C []float64
	A [][]float64
	B []float64
}

// Solution is an optimal vertex of the feasible region.
type Solution struct {
	// X is the optimal assignment, len(C) entries.
	X []float64
	// Objective is C·X.
	Objective float64
	// Duals are the simplex multipliers y, one per constraint row: the
	// shadow prices. Duals[i] approximates the change in the optimal
	// objective per unit increase of B[i]. Rows whose right-hand side was
	// negated during normalization have their sign restored, so the duals
	// always refer to the caller's original constraints.
	Duals []float64
}

func (p Problem) validate() error {
	if len(p.A) != len(p.B) {
		return fmt.Errorf("%w: %d constraint rows but %d right-hand sides", ErrBadProblem, len(p.A), len(p.B))
	}
	for i, row := range p.A {
		if len(row) != len(p.C) {
			return fmt.Errorf("%w: row %d has %d entries, want %d", ErrBadProblem, i, len(row), len(p.C))
		}
	}
	if len(p.C) == 0 {
		return fmt.Errorf("%w: no variables", ErrBadProblem)
	}
	for i, b := range p.B {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			return fmt.Errorf("%w: b[%d] = %v", ErrBadProblem, i, b)
		}
	}
	for j, c := range p.C {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("%w: c[%d] = %v", ErrBadProblem, j, c)
		}
	}
	return nil
}

// tableau is the working state of the simplex method: rows of the constraint
// matrix augmented with the right-hand side, plus the current basis. The
// structural columns always include one artificial column per row (columns
// n..n+m-1), kept through phase 2 so that they continuously hold B^{-1} —
// the factorization warm starts and dual extraction both read.
type tableau struct {
	rows  [][]float64 // m x (cols+1); last column is the RHS
	basis []int       // basis[i] = variable index basic in row i
	cols  int         // number of structural columns (excludes RHS)
}

// Solve finds an optimal solution to the problem, or reports infeasibility
// or unboundedness. One-shot form of Solver.Solve.
func Solve(p Problem) (Solution, error) {
	sol, _, err := NewSolver().Solve(p)
	return sol, err
}

// objective evaluates cost over the current basic solution.
func (t *tableau) objective(cost []float64) float64 {
	var obj float64
	for i, v := range t.basis {
		obj += cost[v] * t.rows[i][t.cols]
	}
	return obj
}

// reducedCost computes cost[j] - y·A_j where y are the simplex multipliers
// implied by the basis, using the tableau's current (already pivoted) form:
// in tableau form the reduced cost is cost[j] - Σ_i cost[basis[i]]·rows[i][j].
func (t *tableau) reducedCost(cost []float64, j int) float64 {
	rc := cost[j]
	for i, v := range t.basis {
		if c := cost[v]; c != 0 {
			rc -= c * t.rows[i][j]
		}
	}
	return rc
}

// optimize runs primal simplex iterations with Bland's rule until no column
// among the first allowedCols has a negative reduced cost. It returns the
// number of pivots performed.
func (t *tableau) optimize(cost []float64, allowedCols, maxIter int) (int, error) {
	for iter := 0; iter < maxIter; iter++ {
		// Bland's rule: entering variable is the lowest-index column with a
		// negative reduced cost.
		enter := -1
		for j := 0; j < allowedCols; j++ {
			if t.isBasic(j) {
				continue
			}
			if t.reducedCost(cost, j) < -pivotTolerance {
				enter = j
				break
			}
		}
		if enter == -1 {
			return iter, nil // optimal
		}

		// Ratio test; Bland tie-break on the leaving variable's index.
		leave := -1
		bestRatio := math.Inf(1)
		for i, row := range t.rows {
			if row[enter] > pivotTolerance {
				ratio := row[t.cols] / row[enter]
				if ratio < bestRatio-pivotTolerance ||
					(math.Abs(ratio-bestRatio) <= pivotTolerance && (leave == -1 || t.basis[i] < t.basis[leave])) {
					bestRatio = ratio
					leave = i
				}
			}
		}
		if leave == -1 {
			return iter, ErrUnbounded
		}
		t.pivot(leave, enter)
	}
	return maxIter, fmt.Errorf("%w after %d iterations", ErrIterationLimit, maxIter)
}

func (t *tableau) isBasic(j int) bool {
	for _, v := range t.basis {
		if v == j {
			return true
		}
	}
	return false
}

// pivot makes column enter basic in row leave.
func (t *tableau) pivot(leave, enter int) {
	pivotRow := t.rows[leave]
	pv := pivotRow[enter]
	for j := range pivotRow {
		pivotRow[j] /= pv
	}
	for i, row := range t.rows {
		if i == leave {
			continue
		}
		if f := row[enter]; f != 0 {
			for j := range row {
				row[j] -= f * pivotRow[j]
			}
		}
	}
	t.basis[leave] = enter
}

// expelArtificials pivots artificial variables (columns >= n) out of the
// basis. A basic artificial at level zero whose row has no eligible pivot
// column corresponds to a redundant constraint; the row is left in place
// (it is all zeros across the original columns) and is harmless.
func (t *tableau) expelArtificials(n int) {
	for i, v := range t.basis {
		if v < n {
			continue
		}
		for j := 0; j < n; j++ {
			if math.Abs(t.rows[i][j]) > pivotTolerance {
				t.pivot(i, j)
				break
			}
		}
	}
}
