package lp

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
)

// scheduleLikeProblem builds a Section IV-B-shaped program: nv variables,
// three rows (Σp = 1, Σp·k = kappa, Σp·m = mu) with k and m coefficient
// patterns like the schedule program's, and a strictly positive cost.
func scheduleLikeProblem(rng *rand.Rand, nv int, kappa, mu float64) Problem {
	p := Problem{
		C: make([]float64, nv),
		A: [][]float64{make([]float64, nv), make([]float64, nv), make([]float64, nv)},
		B: []float64{1, kappa, mu},
	}
	for j := 0; j < nv; j++ {
		p.C[j] = 0.01 + rng.Float64()
		p.A[0][j] = 1
		p.A[1][j] = float64(1 + rng.Intn(5)) // k ∈ [1,5]
		p.A[2][j] = p.A[1][j] + float64(rng.Intn(3))
	}
	// Anchor columns whose convex hull covers every (kappa, mu) the tests
	// use, so the random instances are always feasible.
	p.A[1][0], p.A[2][0] = 1, 1
	p.A[1][1], p.A[2][1] = 5, 7
	p.A[1][2], p.A[2][2] = 1, 3
	return p
}

func solveBoth(t *testing.T, s *Solver, prev *Basis, p Problem) (warm Solution, cold Solution, next *Basis) {
	t.Helper()
	warm, next, err := s.WarmSolve(prev, p)
	if err != nil {
		t.Fatalf("WarmSolve: %v", err)
	}
	cold, err = Solve(p)
	if err != nil {
		t.Fatalf("cold Solve: %v", err)
	}
	return warm, cold, next
}

// TestWarmSolveMatchesColdAcrossPerturbations is the differential sweep: a
// chain of randomized objective and right-hand-side perturbations must keep
// WarmSolve's optimum identical (within tolerance) to a from-scratch solve.
func TestWarmSolveMatchesColdAcrossPerturbations(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nv := 10 + rng.Intn(60)
		p := scheduleLikeProblem(rng, nv, 2+rng.Float64(), 3+rng.Float64())

		s := NewSolver()
		_, basis, err := s.Solve(p)
		if err != nil {
			t.Fatalf("seed %d: initial solve: %v", seed, err)
		}
		for step := 0; step < 25; step++ {
			switch rng.Intn(3) {
			case 0: // objective perturbation: one "channel" moved
				j := rng.Intn(nv)
				p.C[j] = 0.01 + rng.Float64()
			case 1: // small objective drift on several columns
				for k := 0; k < 4; k++ {
					j := rng.Intn(nv)
					p.C[j] *= 1 + 0.2*(rng.Float64()-0.5)
				}
			case 2: // parameter (κ, μ) drift — perturbs B
				p.B[1] = 2 + rng.Float64()
				p.B[2] = p.B[1] + 1 + rng.Float64()
			}
			warm, cold, next := solveBoth(t, s, basis, p)
			if !almostEqual(warm.Objective, cold.Objective, 1e-6) {
				t.Fatalf("seed %d step %d: warm objective %g != cold %g (tier %v)",
					seed, step, warm.Objective, cold.Objective, s.LastStats().Tier)
			}
			for i := range warm.Duals {
				if !almostEqual(warm.Duals[i], cold.Duals[i], 1e-6) {
					t.Fatalf("seed %d step %d: warm dual[%d] %g != cold %g",
						seed, step, i, warm.Duals[i], cold.Duals[i])
				}
			}
			basis = next
		}
	}
}

// TestWarmSolveTiers checks that WarmSolve picks the advertised reuse tier
// for each perturbation shape and that warm pivot counts stay small.
func TestWarmSolveTiers(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := scheduleLikeProblem(rng, 40, 2.4, 3.2)

	s := NewSolver()
	_, basis, err := s.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.LastStats().Tier; got != TierCold {
		t.Fatalf("initial solve tier = %v, want cold", got)
	}
	coldPivots := s.LastStats().Pivots

	// C-only perturbation → reuse tier.
	p.C[3] *= 1.05
	if _, basis, err = s.WarmSolve(basis, p); err != nil {
		t.Fatal(err)
	}
	if st := s.LastStats(); st.Tier != TierReuse {
		t.Fatalf("C-only perturbation tier = %v, want reuse", st.Tier)
	} else if st.Pivots > coldPivots {
		t.Fatalf("warm reuse took %d pivots, cold took %d", st.Pivots, coldPivots)
	}

	// B perturbation → refresh tier.
	p.B[1] += 0.05
	if _, basis, err = s.WarmSolve(basis, p); err != nil {
		t.Fatal(err)
	}
	if st := s.LastStats(); st.Tier != TierRefresh && st.Tier != TierCold {
		t.Fatalf("B perturbation tier = %v, want refresh (or cold fallback)", st.Tier)
	}

	// A perturbation, same shape → refactor tier (or cold fallback when the
	// prior basis is unusable for the new matrix).
	p.A[1][5]++
	if _, basis, err = s.WarmSolve(basis, p); err != nil {
		t.Fatal(err)
	}
	if st := s.LastStats(); st.Tier != TierRefactor && st.Tier != TierCold {
		t.Fatalf("A perturbation tier = %v, want refactor or cold", st.Tier)
	}

	// Shape change → cold.
	grown := scheduleLikeProblem(rng, 41, 2.4, 3.2)
	if _, _, err = s.WarmSolve(basis, grown); err != nil {
		t.Fatal(err)
	}
	if st := s.LastStats(); st.Tier != TierCold {
		t.Fatalf("shape change tier = %v, want cold", st.Tier)
	}
}

// TestWarmSolveNilBasis checks that a nil prev degrades to a cold solve.
func TestWarmSolveNilBasis(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := scheduleLikeProblem(rng, 12, 2.1, 3.0)
	s := NewSolver()
	sol, basis, err := s.WarmSolve(nil, p)
	if err != nil {
		t.Fatal(err)
	}
	if basis == nil {
		t.Fatal("WarmSolve returned nil basis on success")
	}
	if s.LastStats().Tier != TierCold {
		t.Fatalf("tier = %v, want cold", s.LastStats().Tier)
	}
	cold, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(sol.Objective, cold.Objective, 1e-9) {
		t.Fatalf("objective %g != cold %g", sol.Objective, cold.Objective)
	}
}

// TestWarmSolveInfeasiblePerturbation checks that driving B outside the
// feasible region surfaces ErrInfeasible through the warm path's cold
// fallback rather than a wrong answer.
func TestWarmSolveInfeasiblePerturbation(t *testing.T) {
	p := Problem{
		C: []float64{1, 1},
		A: [][]float64{{1, 1}, {1, 2}},
		B: []float64{1, 1.5},
	}
	s := NewSolver()
	_, basis, err := s.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	// x0 + 2 x1 = 3 with x0 + x1 = 1 forces x1 = 2, x0 = -1: infeasible.
	p.B[1] = 3
	if _, _, err := s.WarmSolve(basis, p); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

// TestIterationLimitError asserts the sentinel and the error text carrying
// the iteration count, so warm-start debugging can tell a cycling solve
// from an infeasible one.
func TestIterationLimitError(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := scheduleLikeProblem(rng, 50, 2.5, 3.5)
	s := NewSolver()
	s.maxIter = 1 // far below what a 50-variable two-phase solve needs
	_, _, err := s.Solve(p)
	if err == nil {
		t.Fatal("expected iteration-limit error")
	}
	if !errors.Is(err, ErrIterationLimit) {
		t.Fatalf("err = %v, want ErrIterationLimit", err)
	}
	if errors.Is(err, ErrInfeasible) {
		t.Fatalf("iteration limit must be distinct from infeasibility: %v", err)
	}
	if want := "lp: iteration limit reached after 1 iterations"; !strings.Contains(err.Error(), want) {
		t.Fatalf("error text %q does not contain %q", err.Error(), want)
	}
}

// TestSolverRetainedStateIsolation: a solver's retained state must not leak
// between unrelated problems — solving problem Q after P from P's basis
// must still give Q's optimum.
func TestSolverRetainedStateIsolation(t *testing.T) {
	rngP := rand.New(rand.NewSource(21))
	rngQ := rand.New(rand.NewSource(22))
	p := scheduleLikeProblem(rngP, 30, 2.2, 3.1)
	q := scheduleLikeProblem(rngQ, 30, 2.8, 3.9)

	s := NewSolver()
	_, basisP, err := s.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	warmQ, _, err := s.WarmSolve(basisP, q)
	if err != nil {
		t.Fatal(err)
	}
	coldQ, err := Solve(q)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(warmQ.Objective, coldQ.Objective, 1e-6) {
		t.Fatalf("cross-problem warm solve objective %g != cold %g", warmQ.Objective, coldQ.Objective)
	}
}

// BenchmarkColdVsWarmSolve quantifies the warm-start speedup after a
// single-coefficient objective perturbation on a schedule-sized program.
func BenchmarkColdVsWarmSolve(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	p := scheduleLikeProblem(rng, 80, 2.5, 3.5)

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Solve(p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		s := NewSolver()
		_, basis, err := s.Solve(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.C[i%80] *= 1.0001
			var werr error
			if _, basis, werr = s.WarmSolve(basis, p); werr != nil {
				b.Fatal(werr)
			}
		}
	})
}
