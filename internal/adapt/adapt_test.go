package adapt

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"remicss/internal/core"
	"remicss/internal/netem"
	"remicss/internal/obs"
	"remicss/internal/remicss"
	"remicss/internal/schedule"
	"remicss/internal/sharing"
)

func TestValidation(t *testing.T) {
	if _, err := New(Config{N: 0, TargetLoss: 0.01, MaxRisk: 0.1}); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := New(Config{N: 5, TargetLoss: 1, MaxRisk: 0.1}); err == nil {
		t.Error("target loss 1 accepted")
	}
	if _, err := New(Config{N: 5, TargetLoss: 0.01, MaxRisk: 0}); err == nil {
		t.Error("max risk 0 accepted")
	}
	if _, err := New(Config{N: 3, TargetLoss: 0.01, MaxRisk: 0.5, KappaFloor: 4}); err == nil {
		t.Error("kappa floor above n accepted")
	}
}

func TestMuRisesOnLossAndDecaysWhenClean(t *testing.T) {
	c, err := New(Config{N: 5, TargetLoss: 0.01, MaxRisk: 1, Step: 1, DecayAfter: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, mu := c.Params(); mu != 1 {
		t.Fatalf("initial mu = %v", mu)
	}
	c.ObserveLoss(0.05) // above target
	if _, mu := c.Params(); mu != 2 {
		t.Errorf("mu after loss = %v, want 2", mu)
	}
	c.ObserveLoss(0.2)
	c.ObserveLoss(0.2)
	if _, mu := c.Params(); mu != 4 {
		t.Errorf("mu after three raises = %v, want 4", mu)
	}
	// μ caps at n.
	c.ObserveLoss(0.2)
	c.ObserveLoss(0.2)
	if _, mu := c.Params(); mu != 5 {
		t.Errorf("mu capped = %v, want 5", mu)
	}
	// Two clean epochs decay once.
	c.ObserveLoss(0)
	c.ObserveLoss(0)
	if _, mu := c.Params(); mu != 4 {
		t.Errorf("mu after decay = %v, want 4", mu)
	}
	// One clean epoch is not enough (hysteresis resets).
	c.ObserveLoss(0)
	if _, mu := c.Params(); mu != 4 {
		t.Errorf("mu decayed too eagerly: %v", mu)
	}
	raises, decays := c.Adjustments()
	if raises != 4 || decays != 1 {
		t.Errorf("adjustments = (%d, %d)", raises, decays)
	}
}

func TestMuNeverBelowKappa(t *testing.T) {
	c, err := New(Config{N: 5, TargetLoss: 0.01, MaxRisk: 1, KappaFloor: 3, Step: 1, DecayAfter: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		c.ObserveLoss(0)
	}
	kappa, mu := c.Params()
	if mu < kappa {
		t.Errorf("mu %v below kappa %v", mu, kappa)
	}
	if mu != 3 {
		t.Errorf("mu = %v, want 3 (floor)", mu)
	}
}

func testSet(risks []float64) core.Set {
	s := make(core.Set, len(risks))
	for i, z := range risks {
		s[i] = core.Channel{Risk: z, Loss: 0.01, Delay: time.Millisecond, Rate: 1000}
	}
	return s
}

func TestRetuneFindsMinimalKappa(t *testing.T) {
	c, err := New(Config{N: 4, TargetLoss: 0.01, MaxRisk: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	set := testSet([]float64{0.2, 0.2, 0.2, 0.2})
	kappa, risk, err := c.Retune(set)
	if err != nil {
		t.Fatal(err)
	}
	if risk > 0.05 {
		t.Errorf("risk %v above target", risk)
	}
	// k=1: z >= 0.2. k=2 with all-equal risks: C(m,2)-ish ~ 0.04..0.15
	// depending on schedule; the controller must have found the smallest
	// kappa meeting 0.05.
	if kappa < 2 || kappa > 3 {
		t.Errorf("kappa = %v", kappa)
	}
	// Verify minimality: kappa-1 would violate the target.
	prev, err := New(Config{N: 4, TargetLoss: 0.01, MaxRisk: 0.05, KappaFloor: kappa - 1})
	if err != nil {
		t.Fatal(err)
	}
	k2, risk2, err := prev.Retune(set)
	if err != nil {
		t.Fatal(err)
	}
	if k2 != kappa {
		t.Errorf("retune from lower floor found κ=%v (risk %v), want %v", k2, risk2, kappa)
	}
}

// TestRetuneRoutesThroughCache: the controller's max-rate solves must go
// through the schedule cache, so a repeated Retune over an unchanged (or
// sub-grid-drifted) risk vector hits instead of re-solving, and the result
// is unchanged.
func TestRetuneRoutesThroughCache(t *testing.T) {
	reg := obs.NewRegistry()
	cache := schedule.NewCache(schedule.CacheConfig{Metrics: reg})
	c, err := New(Config{N: 4, TargetLoss: 0.01, MaxRisk: 0.05, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	set := testSet([]float64{0.2, 0.2, 0.2, 0.2})
	k1, r1, err := c.Retune(set)
	if err != nil {
		t.Fatal(err)
	}
	missesAfterFirst := counterOn(t, reg, "remicss_schedule_cache_misses_total")
	if missesAfterFirst == 0 {
		t.Fatal("first Retune recorded no cache misses; solves bypassed the cache")
	}
	k2, r2, err := c.Retune(set)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 || r1 != r2 {
		t.Errorf("cached Retune diverged: (%v, %v) then (%v, %v)", k1, r1, k2, r2)
	}
	if hits := counterOn(t, reg, "remicss_schedule_cache_hits_total"); hits == 0 {
		t.Error("remicss_schedule_cache_hits_total never advanced on a repeated Retune")
	}
}

func counterOn(t *testing.T, reg *obs.Registry, name string) int64 {
	t.Helper()
	for _, s := range reg.Gather() {
		if s.Name == name {
			return s.Value
		}
	}
	t.Fatalf("series %s not registered", name)
	return 0
}

func TestRetuneUnreachableTarget(t *testing.T) {
	c, err := New(Config{N: 3, TargetLoss: 0.01, MaxRisk: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	set := testSet([]float64{0.5, 0.5, 0.5})
	kappa, risk, err := c.Retune(set)
	if !errors.Is(err, ErrRiskUnmet) {
		t.Fatalf("got %v, want ErrRiskUnmet", err)
	}
	if kappa != 3 {
		t.Errorf("kappa = %v, want n", kappa)
	}
	if risk <= 0 {
		t.Errorf("residual risk = %v", risk)
	}
}

func TestRetuneWrongSetSize(t *testing.T) {
	c, err := New(Config{N: 3, TargetLoss: 0.01, MaxRisk: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Retune(testSet([]float64{0.1, 0.1})); err == nil {
		t.Error("mismatched set size accepted")
	}
}

// TestClosedLoopRecoversFromLossBurst runs the full protocol under the
// controller: channel loss jumps mid-run, the controller raises μ, and the
// delivery ratio recovers.
func TestClosedLoopRecoversFromLossBurst(t *testing.T) {
	eng := netem.NewEngine()
	scheme := sharing.NewAuto(rand.New(rand.NewSource(1)))
	delivered := 0
	recv, err := remicss.NewReceiver(remicss.ReceiverConfig{
		Scheme:   scheme,
		Clock:    eng.Now,
		Timeout:  200 * time.Millisecond,
		OnSymbol: func(uint64, []byte, time.Duration) { delivered++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	var netLinks []*netem.Link
	links := make([]remicss.Link, 5)
	for i := range links {
		l, err := netem.NewLink(eng, netem.LinkConfig{Rate: 2000},
			rand.New(rand.NewSource(int64(i)+2)),
			func(p []byte, _ time.Duration) { recv.HandleDatagram(p) })
		if err != nil {
			t.Fatal(err)
		}
		netLinks = append(netLinks, l)
		links[i] = l
	}
	ctrl, err := New(Config{N: 5, TargetLoss: 0.02, MaxRisk: 1, KappaFloor: 2, Step: 1, DecayAfter: 4})
	if err != nil {
		t.Fatal(err)
	}

	// Sender with a chooser rebuilt per epoch from the controller's params.
	var snd *remicss.Sender
	rebuild := func() {
		kappa, mu := ctrl.Params()
		chooser, err := remicss.NewDynamicChooser(kappa, mu, rand.New(rand.NewSource(77)))
		if err != nil {
			t.Fatal(err)
		}
		// Continue the sequence space: the receiver refuses sequence
		// numbers it has already delivered.
		var firstSeq uint64
		if snd != nil {
			firstSeq = snd.Seq()
		}
		s, err := remicss.NewSender(remicss.SenderConfig{
			Scheme: scheme, Chooser: chooser, Clock: eng.Now, FirstSeq: firstSeq,
		}, links)
		if err != nil {
			t.Fatal(err)
		}
		snd = s
	}
	rebuild()

	sent, lastSent, lastDelivered := 0, 0, 0
	var lossPerEpoch []float64
	var muPerEpoch []float64

	var offer func()
	offer = func() {
		if err := snd.Send([]byte{byte(sent)}); err == nil {
			sent++
		}
		if eng.Now() < 10*time.Second {
			eng.Schedule(2*time.Millisecond, offer)
		}
	}
	var epoch func()
	epoch = func() {
		ds, dd := sent-lastSent, delivered-lastDelivered
		lastSent, lastDelivered = sent, delivered
		if ds > 0 {
			loss := 1 - float64(dd)/float64(ds)
			ctrl.ObserveLoss(loss)
			lossPerEpoch = append(lossPerEpoch, loss)
			_, mu := ctrl.Params()
			muPerEpoch = append(muPerEpoch, mu)
			rebuild()
		}
		if eng.Now() < 10*time.Second {
			eng.Schedule(500*time.Millisecond, epoch)
		}
	}
	eng.Schedule(0, offer)
	eng.Schedule(500*time.Millisecond, epoch)
	// At t=3s every channel turns 25% lossy.
	eng.Schedule(3*time.Second, func() {
		for _, l := range netLinks {
			l.SetLoss(0.25)
		}
	})
	eng.Run(10 * time.Second)
	eng.RunUntilIdle()

	raises, _ := ctrl.Adjustments()
	if raises == 0 {
		t.Fatalf("controller never raised mu; losses %v", lossPerEpoch)
	}
	_, muEnd := ctrl.Params()
	if muEnd < 3 {
		t.Errorf("final mu = %v, want >= 3 under 25%% loss with κ=2", muEnd)
	}
	// Delivery in the final two epochs must be back under ~2x target.
	final := lossPerEpoch[len(lossPerEpoch)-1]
	if final > 0.05 {
		t.Errorf("final epoch loss %v; controller failed to recover (mu history %v)", final, muPerEpoch)
	}
}
