// Package adapt closes the loop the paper leaves open: "we investigate how
// tunable protocol parameters affect the balance [...] so that these
// parameters can be chosen and adjusted accordingly" (Section III-A). The
// Controller adjusts the protocol parameters (κ, μ) at runtime from
// measured symbol loss and estimated channel risk:
//
//   - μ (redundancy) rises when measured symbol loss exceeds the target and
//     decays, with hysteresis, when conditions are clean — spending rate
//     (Theorem 4: R_C falls as μ rises) only while it buys reliability.
//   - κ (privacy) is pinned to the smallest threshold whose optimal
//     schedule meets the confidentiality target against the current risk
//     vector, recomputed on Retune.
package adapt

import (
	"errors"
	"fmt"
	"math"

	"remicss/internal/core"
	"remicss/internal/schedule"
)

// Config parameterizes a Controller.
type Config struct {
	// N is the number of channels (μ never exceeds it).
	N int
	// TargetLoss is the maximum acceptable symbol loss fraction.
	TargetLoss float64
	// MaxRisk is the maximum acceptable schedule risk Z(p); Retune raises κ
	// until it is met (or κ = μ).
	MaxRisk float64
	// KappaFloor is the policy minimum threshold regardless of risk.
	// Defaults to 1.
	KappaFloor float64
	// Step is the μ adjustment per decision. Defaults to 0.5.
	Step float64
	// DecayAfter is how many consecutive clean observations precede a μ
	// decrease. Defaults to 3.
	DecayAfter int
	// Cache memoizes Retune's max-rate solves by quantized channel state and
	// probed (κ, μ), so periodic retuning over a slowly-drifting risk vector
	// is a cache hit or a warm simplex re-solve instead of a cold solve. Nil
	// gives the controller a private cache. A shared cache must be built
	// with the zero schedule.Options (what Retune solves with).
	Cache *schedule.Cache
}

func (c *Config) applyDefaults() {
	if c.KappaFloor < 1 {
		c.KappaFloor = 1
	}
	if c.Step <= 0 {
		c.Step = 0.5
	}
	if c.DecayAfter <= 0 {
		c.DecayAfter = 3
	}
}

// Controller holds the adaptive parameter state. Not safe for concurrent
// use.
type Controller struct {
	cfg   Config
	kappa float64
	mu    float64
	clean int

	raises, decays int
}

// New builds a controller starting at κ = KappaFloor, μ = κ.
func New(cfg Config) (*Controller, error) {
	cfg.applyDefaults()
	if cfg.N < 1 {
		return nil, errors.New("adapt: need at least one channel")
	}
	if cfg.TargetLoss < 0 || cfg.TargetLoss >= 1 || math.IsNaN(cfg.TargetLoss) {
		return nil, fmt.Errorf("adapt: target loss %v outside [0, 1)", cfg.TargetLoss)
	}
	if cfg.MaxRisk <= 0 || cfg.MaxRisk > 1 {
		return nil, fmt.Errorf("adapt: max risk %v outside (0, 1]", cfg.MaxRisk)
	}
	if cfg.KappaFloor > float64(cfg.N) {
		return nil, fmt.Errorf("adapt: kappa floor %v above n=%d", cfg.KappaFloor, cfg.N)
	}
	if cfg.Cache == nil {
		cfg.Cache = schedule.NewCache(schedule.CacheConfig{})
	}
	return &Controller{cfg: cfg, kappa: cfg.KappaFloor, mu: cfg.KappaFloor}, nil
}

// Params returns the current (κ, μ).
func (c *Controller) Params() (kappa, mu float64) { return c.kappa, c.mu }

// Adjustments returns how many times μ was raised and lowered.
func (c *Controller) Adjustments() (raises, decays int) { return c.raises, c.decays }

// ObserveLoss feeds one epoch's measured symbol loss fraction and adjusts μ.
func (c *Controller) ObserveLoss(loss float64) {
	if loss > c.cfg.TargetLoss {
		c.clean = 0
		if next := math.Min(c.mu+c.cfg.Step, float64(c.cfg.N)); next > c.mu {
			c.mu = next
			c.raises++
		}
		return
	}
	c.clean++
	// Decay only after sustained clean epochs, and never below κ.
	if c.clean >= c.cfg.DecayAfter {
		c.clean = 0
		if next := math.Max(c.mu-c.cfg.Step, c.kappa); next < c.mu {
			c.mu = next
			c.decays++
		}
	}
}

// Retune recomputes κ for the given channel set (whose risks may have been
// re-estimated): the smallest κ >= KappaFloor whose risk-optimal max-rate
// schedule meets MaxRisk. μ is raised to κ if needed. It returns the chosen
// κ and the achieved risk; if even κ = n cannot meet the target, κ is set
// to n and the residual risk is returned with ErrRiskUnmet.
func (c *Controller) Retune(set core.Set) (float64, float64, error) {
	if set.N() != c.cfg.N {
		return 0, 0, fmt.Errorf("adapt: set has %d channels, controller configured for %d", set.N(), c.cfg.N)
	}
	n := float64(c.cfg.N)
	var lastRisk float64
	for kappa := c.cfg.KappaFloor; kappa <= n; kappa++ {
		mu := math.Max(c.mu, kappa)
		sched, _, err := c.cfg.Cache.OptimizeAtMaxRate(set, kappa, mu, schedule.ObjectiveRisk)
		if err != nil {
			return 0, 0, fmt.Errorf("adapt: optimizing at κ=%v: %w", kappa, err)
		}
		lastRisk = sched.Risk(set)
		if lastRisk <= c.cfg.MaxRisk {
			c.kappa = kappa
			c.mu = mu
			return kappa, lastRisk, nil
		}
	}
	c.kappa = n
	c.mu = n
	return n, lastRisk, ErrRiskUnmet
}

// ErrRiskUnmet means even κ = n cannot reach the confidentiality target on
// the current channels; the controller pins κ = μ = n (maximum privacy).
var ErrRiskUnmet = errors.New("adapt: confidentiality target unreachable")
