package risk

import (
	"fmt"
	"math"
)

// Viterbi returns the most likely hidden state trajectory for the
// observation sequence: when did the channel most plausibly become
// compromised? Useful for forensics after an incident, complementing
// Filter's real-time posterior.
func (m Model) Viterbi(obs []int) ([]int, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if len(obs) == 0 {
		return nil, nil
	}
	alphabet := len(m.Emission[0])
	// Work in log space to avoid underflow on long sequences.
	logProb := func(p float64) float64 {
		if p <= 0 {
			return math.Inf(-1)
		}
		return math.Log(p)
	}

	type cell struct {
		score float64
		from  int
	}
	prev := [numStates]cell{}
	for s := 0; s < numStates; s++ {
		if obs[0] < 0 || obs[0] >= alphabet {
			return nil, fmt.Errorf("%w: obs[0] = %d", ErrBadObservation, obs[0])
		}
		prev[s] = cell{score: logProb(m.Initial[s]) + logProb(m.Emission[s][obs[0]]), from: -1}
	}
	back := make([][numStates]int, len(obs))
	for t := 1; t < len(obs); t++ {
		o := obs[t]
		if o < 0 || o >= alphabet {
			return nil, fmt.Errorf("%w: obs[%d] = %d", ErrBadObservation, t, o)
		}
		var cur [numStates]cell
		for s := 0; s < numStates; s++ {
			best := math.Inf(-1)
			bestFrom := 0
			for p := 0; p < numStates; p++ {
				score := prev[p].score + logProb(m.Transition[p][s])
				if score > best {
					best = score
					bestFrom = p
				}
			}
			cur[s] = cell{score: best + logProb(m.Emission[s][o]), from: bestFrom}
			back[t][s] = bestFrom
		}
		prev = cur
	}

	// Trace back from the best final state.
	states := make([]int, len(obs))
	if prev[StateCompromised].score > prev[StateSafe].score {
		states[len(obs)-1] = StateCompromised
	}
	for t := len(obs) - 1; t > 0; t-- {
		states[t-1] = back[t][states[t]]
	}
	return states, nil
}

// Smooth runs the forward-backward algorithm: the posterior compromise
// probability at each step given the *entire* observation sequence
// (offline smoothing), which is sharper than Filter's causal estimates.
func (m Model) Smooth(obs []int) ([]float64, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if len(obs) == 0 {
		return nil, nil
	}
	alphabet := len(m.Emission[0])
	T := len(obs)
	for t, o := range obs {
		if o < 0 || o >= alphabet {
			return nil, fmt.Errorf("%w: obs[%d] = %d", ErrBadObservation, t, o)
		}
	}

	// Forward pass with per-step normalization.
	alpha := make([][numStates]float64, T)
	for s := 0; s < numStates; s++ {
		alpha[0][s] = m.Initial[s] * m.Emission[s][obs[0]]
	}
	normalize(&alpha[0])
	for t := 1; t < T; t++ {
		for s := 0; s < numStates; s++ {
			var sum float64
			for p := 0; p < numStates; p++ {
				sum += alpha[t-1][p] * m.Transition[p][s]
			}
			alpha[t][s] = sum * m.Emission[s][obs[t]]
		}
		normalize(&alpha[t])
	}

	// Backward pass.
	beta := make([][numStates]float64, T)
	beta[T-1] = [numStates]float64{1, 1}
	for t := T - 2; t >= 0; t-- {
		for s := 0; s < numStates; s++ {
			var sum float64
			for nx := 0; nx < numStates; nx++ {
				sum += m.Transition[s][nx] * m.Emission[nx][obs[t+1]] * beta[t+1][nx]
			}
			beta[t][s] = sum
		}
		normalize(&beta[t])
	}

	out := make([]float64, T)
	for t := 0; t < T; t++ {
		num := alpha[t][StateCompromised] * beta[t][StateCompromised]
		den := num + alpha[t][StateSafe]*beta[t][StateSafe]
		if den <= 0 {
			// Impossible observations throughout; fall back to the filtered
			// value's neutral 0.5.
			out[t] = 0.5
			continue
		}
		out[t] = num / den
	}
	return out, nil
}

func normalize(v *[numStates]float64) {
	sum := v[0] + v[1]
	if sum <= 0 {
		v[0], v[1] = 0.5, 0.5
		return
	}
	v[0] /= sum
	v[1] /= sum
}
