package risk

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDefaultModelValid(t *testing.T) {
	if err := DefaultModel().Validate(); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*Model)
	}{
		{"initial not summing", func(m *Model) { m.Initial = [2]float64{0.5, 0.4} }},
		{"negative transition", func(m *Model) { m.Transition[0] = [2]float64{1.2, -0.2} }},
		{"emission size mismatch", func(m *Model) { m.Emission[1] = []float64{1} }},
		{"empty emissions", func(m *Model) { m.Emission[0], m.Emission[1] = nil, nil }},
		{"emission not summing", func(m *Model) { m.Emission[0] = []float64{0.5, 0.1, 0.1} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := DefaultModel()
			tc.mod(&m)
			if err := m.Validate(); !errors.Is(err, ErrBadModel) {
				t.Errorf("got %v, want ErrBadModel", err)
			}
		})
	}
}

// TestFilterHandComputed checks one forward step against a hand calculation.
func TestFilterHandComputed(t *testing.T) {
	m := Model{
		Initial:    [2]float64{0.8, 0.2},
		Transition: [2][2]float64{{0.9, 0.1}, {0.3, 0.7}},
		Emission: [2][]float64{
			{0.7, 0.3},
			{0.2, 0.8},
		},
	}
	// One observation of symbol 1:
	// predict: safe = .8*.9 + .2*.3 = .78 ; comp = .8*.1 + .2*.7 = .22
	// weight:  safe = .78*.3 = .234 ; comp = .22*.8 = .176
	// posterior comp = .176 / (.234+.176) = .4292682927
	post, err := m.Filter([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(post[0], 0.176/0.410, 1e-9) {
		t.Errorf("posterior = %v, want %v", post[0], 0.176/0.410)
	}
}

func TestAlertsRaiseRiskQuietLowersIt(t *testing.T) {
	m := DefaultModel()
	base, err := m.Risk(nil)
	if err != nil {
		t.Fatal(err)
	}
	alerts, err := m.Risk([]int{2, 2, 2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	quiet, err := m.Risk([]int{0, 0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if alerts <= base {
		t.Errorf("alerts did not raise risk: %v <= %v", alerts, base)
	}
	if quiet >= base {
		t.Errorf("quiet did not lower risk: %v >= %v", quiet, base)
	}
}

func TestPosteriorsAreProbabilities(t *testing.T) {
	m := DefaultModel()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		_, obs, err := m.Simulate(200, rng)
		if err != nil {
			t.Fatal(err)
		}
		post, err := m.Filter(obs)
		if err != nil {
			t.Fatal(err)
		}
		for tt, p := range post {
			if p < 0 || p > 1 || math.IsNaN(p) {
				t.Fatalf("posterior[%d] = %v", tt, p)
			}
		}
	}
}

// TestFilterTracksSimulatedCompromise verifies the filter discriminates:
// average posterior while truly compromised should exceed the average while
// safe.
func TestFilterTracksSimulatedCompromise(t *testing.T) {
	m := DefaultModel()
	rng := rand.New(rand.NewSource(4))
	var safeSum, compSum float64
	var safeN, compN int
	for trial := 0; trial < 50; trial++ {
		states, obs, err := m.Simulate(300, rng)
		if err != nil {
			t.Fatal(err)
		}
		post, err := m.Filter(obs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range states {
			if states[i] == StateCompromised {
				compSum += post[i]
				compN++
			} else {
				safeSum += post[i]
				safeN++
			}
		}
	}
	if compN == 0 || safeN == 0 {
		t.Skip("simulation produced only one state")
	}
	safeAvg := safeSum / float64(safeN)
	compAvg := compSum / float64(compN)
	if compAvg <= safeAvg+0.1 {
		t.Errorf("filter does not discriminate: safe avg %v, compromised avg %v", safeAvg, compAvg)
	}
}

func TestUniformEmissionsGiveNoInformation(t *testing.T) {
	// With identical emissions in both states, the posterior equals the
	// Markov-chain predictive distribution regardless of observations.
	m := Model{
		Initial:    [2]float64{1, 0},
		Transition: [2][2]float64{{0.9, 0.1}, {0, 1}},
		Emission: [2][]float64{
			{0.5, 0.5},
			{0.5, 0.5},
		},
	}
	post, err := m.Filter([]int{0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	// Predictive compromised mass after t steps: 1 - 0.9^t.
	for i, want := range []float64{0.1, 0.19, 0.271} {
		if !almostEqual(post[i], want, 1e-9) {
			t.Errorf("post[%d] = %v, want %v", i, post[i], want)
		}
	}
}

func TestImpossibleObservationFallsBack(t *testing.T) {
	// Symbol 1 has zero probability in both states; the filter must not
	// divide by zero and should keep the predictive distribution.
	m := Model{
		Initial:    [2]float64{0.5, 0.5},
		Transition: [2][2]float64{{1, 0}, {0, 1}},
		Emission: [2][]float64{
			{1, 0},
			{1, 0},
		},
	}
	post, err := m.Filter([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(post[0], 0.5, 1e-9) {
		t.Errorf("posterior = %v, want 0.5", post[0])
	}
}

func TestFilterRejectsOutOfAlphabet(t *testing.T) {
	m := DefaultModel()
	if _, err := m.Filter([]int{5}); !errors.Is(err, ErrBadObservation) {
		t.Errorf("got %v, want ErrBadObservation", err)
	}
	if _, err := m.Filter([]int{-1}); !errors.Is(err, ErrBadObservation) {
		t.Errorf("got %v, want ErrBadObservation", err)
	}
}

func TestEstimateRisks(t *testing.T) {
	m := DefaultModel()
	obs := [][]int{
		{0, 0, 0, 0},
		{2, 2, 2, 2},
		nil,
	}
	zs, err := EstimateRisks(m, obs)
	if err != nil {
		t.Fatal(err)
	}
	if len(zs) != 3 {
		t.Fatalf("got %d risks", len(zs))
	}
	if zs[0] >= zs[1] {
		t.Errorf("quiet channel risk %v >= alerting channel risk %v", zs[0], zs[1])
	}
	if !almostEqual(zs[2], m.Initial[StateCompromised], 1e-12) {
		t.Errorf("no-observation risk = %v, want prior %v", zs[2], m.Initial[StateCompromised])
	}
}

func TestSimulateValidation(t *testing.T) {
	m := DefaultModel()
	if _, _, err := m.Simulate(10, nil); err == nil {
		t.Error("nil rng accepted")
	}
	bad := m
	bad.Initial = [2]float64{2, -1}
	if _, _, err := bad.Simulate(10, rand.New(rand.NewSource(1))); !errors.Is(err, ErrBadModel) {
		t.Errorf("got %v, want ErrBadModel", err)
	}
}

func TestRiskEmptyObservationUsesValidatedPrior(t *testing.T) {
	bad := DefaultModel()
	bad.Initial = [2]float64{0.2, 0.2}
	if _, err := bad.Risk(nil); !errors.Is(err, ErrBadModel) {
		t.Errorf("got %v, want ErrBadModel", err)
	}
}

func BenchmarkFilter1000(b *testing.B) {
	m := DefaultModel()
	rng := rand.New(rand.NewSource(1))
	_, obs, err := m.Simulate(1000, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Filter(obs); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSimulateSetSeededAndDistinct(t *testing.T) {
	m := DefaultModel()
	a, err := m.SimulateSet(3, 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.SimulateSet(3, 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 3 {
		t.Fatalf("%d channels, want 3", len(a))
	}
	for i := range a {
		if len(a[i]) != 200 {
			t.Fatalf("channel %d: %d observations, want 200", i, len(a[i]))
		}
		for tt := range a[i] {
			if a[i][tt] != b[i][tt] {
				t.Fatalf("channel %d differs between same-seed runs at t=%d", i, tt)
			}
		}
	}
	// One rng threads through all channels: their sequences must differ.
	same := true
	for tt := range a[0] {
		if a[0][tt] != a[1][tt] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("channels 0 and 1 drew identical sequences")
	}
	// The sequences feed the estimator directly.
	if _, err := EstimateRisks(m, a); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SimulateSet(0, 10, 1); err == nil {
		t.Fatal("zero channels accepted")
	}
}
