// Package risk estimates per-channel eavesdropping risk — the z vector the
// protocol model consumes — from observable network evidence.
//
// The paper treats ẑ as an input "estimated using network risk assessment
// techniques", citing the hidden-Markov-model approach of Årnes et al.
// (2006). This package implements that technique: each channel is a
// two-state HMM (Safe, Compromised) emitting discrete observation symbols
// (e.g. IDS alert levels), and the forward algorithm yields the posterior
// probability that the channel is currently compromised, which is used
// directly as the channel's risk metric z.
package risk

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Channel states.
const (
	// StateSafe means the adversary cannot observe shares on the channel.
	StateSafe = 0
	// StateCompromised means the adversary observes every share.
	StateCompromised = 1
	numStates        = 2
)

// Model is a two-state discrete HMM describing one channel's compromise
// process.
type Model struct {
	// Initial is the prior distribution over {Safe, Compromised}.
	Initial [numStates]float64
	// Transition[i][j] is the per-step probability of moving from state i
	// to state j.
	Transition [numStates][numStates]float64
	// Emission[i] is the distribution over observation symbols in state i.
	// Both rows must have equal length (the observation alphabet size).
	Emission [numStates][]float64
}

// Validation errors.
var (
	ErrBadModel       = errors.New("risk: invalid model")
	ErrBadObservation = errors.New("risk: observation outside alphabet")
)

const probTolerance = 1e-9

// Validate checks that all distributions are well-formed.
func (m Model) Validate() error {
	if err := checkDist(m.Initial[:]); err != nil {
		return fmt.Errorf("%w: initial: %v", ErrBadModel, err)
	}
	for i := 0; i < numStates; i++ {
		if err := checkDist(m.Transition[i][:]); err != nil {
			return fmt.Errorf("%w: transition[%d]: %v", ErrBadModel, i, err)
		}
	}
	if len(m.Emission[0]) == 0 || len(m.Emission[0]) != len(m.Emission[1]) {
		return fmt.Errorf("%w: emission alphabet sizes %d and %d",
			ErrBadModel, len(m.Emission[0]), len(m.Emission[1]))
	}
	for i := 0; i < numStates; i++ {
		if err := checkDist(m.Emission[i]); err != nil {
			return fmt.Errorf("%w: emission[%d]: %v", ErrBadModel, i, err)
		}
	}
	return nil
}

func checkDist(p []float64) error {
	var sum float64
	for _, v := range p {
		if v < 0 || math.IsNaN(v) {
			return fmt.Errorf("negative or NaN probability %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > probTolerance {
		return fmt.Errorf("probabilities sum to %v", sum)
	}
	return nil
}

// DefaultModel returns a reasonable channel-compromise model: channels are
// rarely compromised, compromise persists, and the alphabet is
// {quiet, suspicious, alert} with alerts far likelier when compromised.
func DefaultModel() Model {
	return Model{
		Initial:    [numStates]float64{0.95, 0.05},
		Transition: [numStates][numStates]float64{{0.99, 0.01}, {0.05, 0.95}},
		Emission: [numStates][]float64{
			{0.90, 0.08, 0.02}, // safe: mostly quiet
			{0.40, 0.35, 0.25}, // compromised: noisy
		},
	}
}

// Filter runs the forward algorithm over the observation sequence and
// returns the posterior probability of StateCompromised after each
// observation. An empty sequence returns the prior's compromised mass.
func (m Model) Filter(obs []int) ([]float64, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	alphabet := len(m.Emission[0])
	cur := m.Initial
	out := make([]float64, 0, len(obs))
	for t, o := range obs {
		if o < 0 || o >= alphabet {
			return nil, fmt.Errorf("%w: obs[%d] = %d, alphabet %d", ErrBadObservation, t, o, alphabet)
		}
		var next [numStates]float64
		for j := 0; j < numStates; j++ {
			var pred float64
			for i := 0; i < numStates; i++ {
				pred += cur[i] * m.Transition[i][j]
			}
			next[j] = pred * m.Emission[j][o]
		}
		norm := next[0] + next[1]
		if norm <= 0 {
			// The observation is impossible under both states; fall back to
			// the predictive distribution without conditioning.
			for j := 0; j < numStates; j++ {
				var pred float64
				for i := 0; i < numStates; i++ {
					pred += cur[i] * m.Transition[i][j]
				}
				next[j] = pred
			}
			norm = next[0] + next[1]
		}
		next[0] /= norm
		next[1] /= norm
		cur = next
		out = append(out, cur[StateCompromised])
	}
	return out, nil
}

// Risk returns the channel's current risk metric z: the posterior
// compromise probability after the full observation sequence.
func (m Model) Risk(obs []int) (float64, error) {
	if len(obs) == 0 {
		if err := m.Validate(); err != nil {
			return 0, err
		}
		return m.Initial[StateCompromised], nil
	}
	post, err := m.Filter(obs)
	if err != nil {
		return 0, err
	}
	return post[len(post)-1], nil
}

// EstimateRisks derives the risk vector ẑ for a channel set from one
// observation sequence per channel, all under the same model.
func EstimateRisks(m Model, obsPerChannel [][]int) ([]float64, error) {
	out := make([]float64, len(obsPerChannel))
	for i, obs := range obsPerChannel {
		z, err := m.Risk(obs)
		if err != nil {
			return nil, fmt.Errorf("channel %d: %w", i, err)
		}
		out[i] = z
	}
	return out, nil
}

// Simulate generates a state trajectory and observation sequence of the
// given length from the model, for examples and tests. It returns the
// hidden states and the observations.
func (m Model) Simulate(length int, rng *rand.Rand) (states, obs []int, err error) {
	if err := m.Validate(); err != nil {
		return nil, nil, err
	}
	if rng == nil {
		return nil, nil, errors.New("risk: nil rng")
	}
	states = make([]int, length)
	obs = make([]int, length)
	state := sample(m.Initial[:], rng)
	for t := 0; t < length; t++ {
		if t > 0 {
			state = sample(m.Transition[state][:], rng)
		}
		states[t] = state
		obs[t] = sample(m.Emission[state], rng)
	}
	return states, obs, nil
}

// SimulateSet generates one observation sequence per channel from a single
// seed, threading one seeded rng through every channel's trajectory so a
// multi-channel experiment replays exactly from its seed instead of
// depending on ambient randomness. The sequences feed EstimateRisks.
func (m Model) SimulateSet(channels, length int, seed int64) (obsPerChannel [][]int, err error) {
	if channels <= 0 {
		return nil, errors.New("risk: channels must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([][]int, channels)
	for i := range out {
		if _, out[i], err = m.Simulate(length, rng); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func sample(dist []float64, rng *rand.Rand) int {
	u := rng.Float64()
	var cum float64
	for i, p := range dist {
		cum += p
		if u < cum {
			return i
		}
	}
	return len(dist) - 1
}
