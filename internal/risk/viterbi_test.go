package risk

import (
	"errors"
	"math/rand"
	"testing"
)

func TestViterbiEmpty(t *testing.T) {
	m := DefaultModel()
	states, err := m.Viterbi(nil)
	if err != nil {
		t.Fatal(err)
	}
	if states != nil {
		t.Errorf("got %v for empty observations", states)
	}
}

func TestViterbiObviousTrajectories(t *testing.T) {
	m := DefaultModel()
	// Long quiet run: all safe.
	quiet := make([]int, 50)
	states, err := m.Viterbi(quiet)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range states {
		if s != StateSafe {
			t.Fatalf("quiet step %d decoded as %d", i, s)
		}
	}
	// Persistent alerts: should settle into compromised.
	alerts := make([]int, 50)
	for i := range alerts {
		alerts[i] = 2
	}
	states, err = m.Viterbi(alerts)
	if err != nil {
		t.Fatal(err)
	}
	comp := 0
	for _, s := range states {
		if s == StateCompromised {
			comp++
		}
	}
	if comp < 40 {
		t.Errorf("only %d of 50 alert steps decoded compromised", comp)
	}
}

func TestViterbiDetectsTransitionPoint(t *testing.T) {
	m := DefaultModel()
	// 30 quiet steps, then 30 alerts: the decoded switch should happen near
	// step 30.
	obs := make([]int, 60)
	for i := 30; i < 60; i++ {
		obs[i] = 2
	}
	states, err := m.Viterbi(obs)
	if err != nil {
		t.Fatal(err)
	}
	switchAt := -1
	for i, s := range states {
		if s == StateCompromised {
			switchAt = i
			break
		}
	}
	if switchAt < 25 || switchAt > 35 {
		t.Errorf("compromise decoded at step %d, want near 30", switchAt)
	}
	// Once compromised (persistent state), it should stay compromised.
	for i := switchAt; i < 60; i++ {
		if states[i] != StateCompromised {
			t.Errorf("state flapped back to safe at %d", i)
			break
		}
	}
}

func TestViterbiMatchesTruthOnSimulatedData(t *testing.T) {
	m := DefaultModel()
	rng := rand.New(rand.NewSource(5))
	agree, total := 0, 0
	for trial := 0; trial < 30; trial++ {
		truth, obs, err := m.Simulate(200, rng)
		if err != nil {
			t.Fatal(err)
		}
		decoded, err := m.Viterbi(obs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range truth {
			if decoded[i] == truth[i] {
				agree++
			}
			total++
		}
	}
	if acc := float64(agree) / float64(total); acc < 0.8 {
		t.Errorf("Viterbi accuracy %.3f, want >= 0.8 on model-generated data", acc)
	}
}

func TestViterbiValidation(t *testing.T) {
	m := DefaultModel()
	if _, err := m.Viterbi([]int{9}); !errors.Is(err, ErrBadObservation) {
		t.Errorf("got %v, want ErrBadObservation", err)
	}
	bad := m
	bad.Initial = [2]float64{0.2, 0.2}
	if _, err := bad.Viterbi([]int{0}); !errors.Is(err, ErrBadModel) {
		t.Errorf("got %v, want ErrBadModel", err)
	}
}

func TestSmoothSharperThanFilter(t *testing.T) {
	m := DefaultModel()
	rng := rand.New(rand.NewSource(6))
	var filterErr, smoothErr float64
	n := 0
	for trial := 0; trial < 30; trial++ {
		truth, obs, err := m.Simulate(200, rng)
		if err != nil {
			t.Fatal(err)
		}
		filtered, err := m.Filter(obs)
		if err != nil {
			t.Fatal(err)
		}
		smoothed, err := m.Smooth(obs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range truth {
			target := 0.0
			if truth[i] == StateCompromised {
				target = 1
			}
			filterErr += (filtered[i] - target) * (filtered[i] - target)
			smoothErr += (smoothed[i] - target) * (smoothed[i] - target)
			n++
		}
	}
	if smoothErr >= filterErr {
		t.Errorf("smoothing MSE %.4f not better than filtering MSE %.4f",
			smoothErr/float64(n), filterErr/float64(n))
	}
}

func TestSmoothBounds(t *testing.T) {
	m := DefaultModel()
	rng := rand.New(rand.NewSource(7))
	_, obs, err := m.Simulate(300, rng)
	if err != nil {
		t.Fatal(err)
	}
	post, err := m.Smooth(obs)
	if err != nil {
		t.Fatal(err)
	}
	for t2, p := range post {
		if p < 0 || p > 1 {
			t.Fatalf("smoothed[%d] = %v", t2, p)
		}
	}
	// Empty input.
	if out, err := m.Smooth(nil); err != nil || out != nil {
		t.Errorf("Smooth(nil) = (%v, %v)", out, err)
	}
	if _, err := m.Smooth([]int{5}); !errors.Is(err, ErrBadObservation) {
		t.Errorf("got %v, want ErrBadObservation", err)
	}
}

func BenchmarkViterbi1000(b *testing.B) {
	m := DefaultModel()
	_, obs, err := m.Simulate(1000, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Viterbi(obs); err != nil {
			b.Fatal(err)
		}
	}
}
