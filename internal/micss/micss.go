// Package micss implements the MICSS baseline protocol (Pohly & McDaniel,
// GLOBECOM 2015), the predecessor the paper redesigns ReMICSS from.
//
// MICSS fixes κ = μ = n: every symbol is split with a perfect n-of-n scheme
// (XOR pads) and one share travels on every channel. Share transport is
// reliable: lost shares are retransmitted on the same channel after a
// timeout, which stalls the symbol until every share has arrived. The
// paper's Section V observes that this wastes network resources whenever
// k < m would have sufficed; this package exists so benchmarks can measure
// that gap against ReMICSS.
//
// The implementation runs on the internal/netem virtual-time engine. The
// acknowledgment path is modeled as a per-channel reverse link with the
// same delay but no loss or rate limit — acks are tiny compared to shares,
// so their serialization is negligible, and modeling ack loss would only
// add retransmissions that make MICSS look worse; the comparison stays
// conservative.
package micss

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"remicss/internal/netem"
	"remicss/internal/sharing"
)

// Config parameterizes a MICSS session.
type Config struct {
	// Links are the forward channels, one share per channel per symbol.
	Links []netem.LinkConfig
	// RTO is the retransmission timeout for an unacknowledged share.
	// Defaults to 4x the largest channel delay plus 100ms if zero.
	RTO time.Duration
	// Window is the maximum number of symbols in flight. Defaults to 64.
	Window int
	// Seed drives the loss processes and the sharing scheme.
	Seed int64
}

// Stats summarizes a run.
type Stats struct {
	// SymbolsDelivered counts fully reassembled symbols.
	SymbolsDelivered int64
	// SharesSent counts share transmissions, including retransmissions.
	SharesSent int64
	// Retransmissions counts re-sent shares.
	Retransmissions int64
	// MeanDelay is the average time from first transmission of a symbol to
	// its completion.
	MeanDelay time.Duration
}

// Session is one MICSS sender/receiver pair over emulated channels.
type Session struct {
	eng    *netem.Engine
	cfg    Config
	scheme *sharing.XOR
	links  []*netem.Link
	n      int

	nextSeq   uint64
	inFlight  map[uint64]*symbolState
	delivered int64
	sharesTx  int64
	retx      int64
	delaySum  time.Duration

	pending [][]byte // symbols waiting for window space //remicss:secret
}

type symbolState struct {
	seq      uint64
	shares   []sharing.Share
	acked    []bool
	sentAt   time.Duration
	timers   []uint64 // retransmission generation per channel
	complete bool
}

// NewSession builds a session over fresh links on a new engine.
func NewSession(cfg Config) (*Session, error) {
	if len(cfg.Links) == 0 {
		return nil, errors.New("micss: no channels")
	}
	if cfg.Window <= 0 {
		cfg.Window = 64
	}
	if cfg.RTO <= 0 {
		var maxDelay time.Duration
		for _, l := range cfg.Links {
			if l.Delay > maxDelay {
				maxDelay = l.Delay
			}
		}
		cfg.RTO = 4*maxDelay + 100*time.Millisecond
	}
	s := &Session{
		eng:      netem.NewEngine(),
		cfg:      cfg,
		scheme:   sharing.NewXOR(rand.New(rand.NewSource(cfg.Seed))), //lint:allow insecure-rand deterministic simulation baseline needs reproducible pads
		inFlight: make(map[uint64]*symbolState),
		n:        len(cfg.Links),
	}
	for i, lc := range cfg.Links {
		i := i
		link, err := netem.NewLink(s.eng, lc, rand.New(rand.NewSource(cfg.Seed+int64(i)+1)),
			func(payload []byte, _ time.Duration) { s.onShareArrival(i, payload) })
		if err != nil {
			return nil, fmt.Errorf("micss: channel %d: %w", i, err)
		}
		s.links = append(s.links, link)
	}
	return s, nil
}

// Engine exposes the virtual-time engine so callers can schedule workload
// and advance time.
func (s *Session) Engine() *netem.Engine { return s.eng }

// Send submits one symbol; it queues if the window is full.
//
//remicss:secret payload
func (s *Session) Send(payload []byte) error {
	if len(s.inFlight) >= s.cfg.Window {
		s.pending = append(s.pending, payload)
		return nil
	}
	return s.transmit(payload)
}

func (s *Session) transmit(payload []byte) error {
	shares, err := s.scheme.Split(payload, s.n, s.n)
	if err != nil {
		return fmt.Errorf("micss: split: %w", err)
	}
	st := &symbolState{
		seq:    s.nextSeq,
		shares: shares,
		acked:  make([]bool, s.n),
		sentAt: s.eng.Now(),
		timers: make([]uint64, s.n),
	}
	s.nextSeq++
	s.inFlight[st.seq] = st
	for i := 0; i < s.n; i++ {
		s.sendShare(st, i)
	}
	return nil
}

// shareWire is the minimal in-simulation encoding: seq plus channel index.
// MICSS reassembly is per-channel reliable, so the full ReMICSS header is
// unnecessary inside the simulator.
func (s *Session) encode(st *symbolState, ch int) []byte {
	buf := make([]byte, 9+len(st.shares[ch].Data))
	buf[0] = byte(ch)
	for b := 0; b < 8; b++ {
		buf[1+b] = byte(st.seq >> (8 * (7 - b)))
	}
	copy(buf[9:], st.shares[ch].Data)
	return buf
}

func decodeSeq(buf []byte) (uint64, bool) {
	if len(buf) < 9 {
		return 0, false
	}
	var seq uint64
	for b := 0; b < 8; b++ {
		seq = seq<<8 | uint64(buf[1+b])
	}
	return seq, true
}

func (s *Session) sendShare(st *symbolState, ch int) {
	s.sharesTx++
	gen := st.timers[ch]
	s.links[ch].Send(s.encode(st, ch))
	// Arm the retransmission timer; a later ack bumps the generation and
	// cancels this timer logically.
	s.eng.Schedule(s.cfg.RTO, func() {
		if st.complete || st.acked[ch] || st.timers[ch] != gen {
			return
		}
		st.timers[ch]++
		s.retx++
		s.sendShare(st, ch)
	})
}

// onShareArrival models the receiver: it acks the share back over a
// lossless reverse path with the channel's delay, and completes the symbol
// when every channel's share has arrived.
func (s *Session) onShareArrival(ch int, payload []byte) {
	seq, ok := decodeSeq(payload)
	if !ok {
		return
	}
	s.eng.Schedule(s.cfg.Links[ch].Delay, func() { s.onAck(ch, seq) })
}

func (s *Session) onAck(ch int, seq uint64) {
	st, ok := s.inFlight[seq]
	if !ok || st.acked[ch] {
		return
	}
	st.acked[ch] = true
	st.timers[ch]++ // cancel outstanding timer
	for _, a := range st.acked {
		if !a {
			return
		}
	}
	// All shares delivered: the receiver has reconstructed the symbol. The
	// completion time is when the last share arrived (one channel delay
	// before its ack returned).
	st.complete = true
	delete(s.inFlight, seq)
	s.delivered++
	s.delaySum += (s.eng.Now() - s.cfg.Links[ch].Delay) - st.sentAt
	if len(s.pending) > 0 {
		next := s.pending[0]
		s.pending = s.pending[1:]
		if err := s.transmit(next); err != nil {
			// Splitting cannot fail for payloads that succeeded before;
			// drop the symbol rather than wedge the window.
			return
		}
	}
}

// Stats summarizes the session so far.
func (s *Session) Stats() Stats {
	st := Stats{
		SymbolsDelivered: s.delivered,
		SharesSent:       s.sharesTx,
		Retransmissions:  s.retx,
	}
	if s.delivered > 0 {
		st.MeanDelay = s.delaySum / time.Duration(s.delivered)
	}
	return st
}
