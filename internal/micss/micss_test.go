package micss

import (
	"bytes"
	"remicss/internal/sharing"
	"testing"
	"time"

	"remicss/internal/netem"
)

func fiveLinks(rate float64, loss float64) []netem.LinkConfig {
	cfgs := make([]netem.LinkConfig, 5)
	for i := range cfgs {
		cfgs[i] = netem.LinkConfig{Rate: rate, Loss: loss, QueueLimit: 64}
	}
	return cfgs
}

func TestLosslessDeliversEverything(t *testing.T) {
	s, err := NewSession(Config{Links: fiveLinks(1000, 0), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	const symbols = 100
	payload := bytes.Repeat([]byte{0xAB}, 64)
	for i := 0; i < symbols; i++ {
		if err := s.Send(payload); err != nil {
			t.Fatal(err)
		}
	}
	s.Engine().RunUntilIdle()
	st := s.Stats()
	if st.SymbolsDelivered != symbols {
		t.Errorf("delivered %d, want %d", st.SymbolsDelivered, symbols)
	}
	if st.Retransmissions != 0 {
		t.Errorf("retransmissions %d on lossless channels", st.Retransmissions)
	}
	if st.SharesSent != symbols*5 {
		t.Errorf("shares sent %d, want %d", st.SharesSent, symbols*5)
	}
}

func TestLossyStillDeliversViaRetransmission(t *testing.T) {
	s, err := NewSession(Config{Links: fiveLinks(1000, 0.2), Seed: 2, RTO: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	const symbols = 100
	for i := 0; i < symbols; i++ {
		if err := s.Send([]byte{byte(i), 1, 2, 3}); err != nil {
			t.Fatal(err)
		}
	}
	s.Engine().RunUntilIdle()
	st := s.Stats()
	if st.SymbolsDelivered != symbols {
		t.Errorf("delivered %d, want %d (reliable transport)", st.SymbolsDelivered, symbols)
	}
	if st.Retransmissions == 0 {
		t.Error("no retransmissions despite 20% loss")
	}
}

func TestRetransmissionStallsRaiseDelay(t *testing.T) {
	mk := func(loss float64) time.Duration {
		s, err := NewSession(Config{
			Links: fiveLinks(1000, loss),
			Seed:  3,
			RTO:   50 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			if err := s.Send([]byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		s.Engine().RunUntilIdle()
		return s.Stats().MeanDelay
	}
	clean := mk(0)
	lossy := mk(0.3)
	if lossy <= clean {
		t.Errorf("mean delay with loss (%v) not above lossless (%v)", lossy, clean)
	}
}

func TestWindowQueuesExcessSymbols(t *testing.T) {
	s, err := NewSession(Config{Links: fiveLinks(100, 0), Seed: 4, Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := s.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	s.Engine().RunUntilIdle()
	if got := s.Stats().SymbolsDelivered; got != 50 {
		t.Errorf("delivered %d, want 50", got)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewSession(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := NewSession(Config{Links: []netem.LinkConfig{{Rate: -1}}}); err == nil {
		t.Error("invalid link accepted")
	}
}

func TestDefaultRTOScalesWithDelay(t *testing.T) {
	links := fiveLinks(1000, 0)
	links[2].Delay = 200 * time.Millisecond
	s, err := NewSession(Config{Links: links, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if want := 4*200*time.Millisecond + 100*time.Millisecond; s.cfg.RTO != want {
		t.Errorf("default RTO = %v, want %v", s.cfg.RTO, want)
	}
}

func BenchmarkMICSSLossless(b *testing.B) {
	s, err := NewSession(Config{Links: fiveLinks(1e6, 0), Seed: 1, Window: 1024})
	if err != nil {
		b.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x11}, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Send(payload); err != nil {
			b.Fatal(err)
		}
		if i%512 == 0 {
			s.Engine().RunUntilIdle()
		}
	}
	s.Engine().RunUntilIdle()
}

func TestEncodeDecodeSeq(t *testing.T) {
	s, err := NewSession(Config{Links: fiveLinks(100, 0), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	st := &symbolState{seq: 0xDEADBEEFCAFE, shares: make([]sharing.Share, 5)}
	for i := range st.shares {
		st.shares[i] = sharing.Share{Index: i, Data: []byte{1, 2, 3}}
	}
	buf := s.encode(st, 3)
	if buf[0] != 3 {
		t.Errorf("channel byte = %d", buf[0])
	}
	seq, ok := decodeSeq(buf)
	if !ok || seq != 0xDEADBEEFCAFE {
		t.Errorf("decoded seq = %x ok=%v", seq, ok)
	}
	if _, ok := decodeSeq([]byte{1, 2}); ok {
		t.Error("short buffer decoded")
	}
}

func TestThroughputBoundedBySlowestChannel(t *testing.T) {
	// MICSS sends every symbol on every channel, so goodput cannot exceed
	// the slowest channel's rate — and a window larger than the bottleneck
	// queue makes it much worse (drops trigger RTO storms into a full
	// queue), the congestion failure mode of naive reliable transport.
	run := func(window int) float64 {
		links := fiveLinks(1000, 0)
		links[2].Rate = 100 // slow channel
		s, err := NewSession(Config{Links: links, Seed: 8, Window: window})
		if err != nil {
			t.Fatal(err)
		}
		eng := s.Engine()
		sent := 0
		var offer func()
		offer = func() {
			if err := s.Send([]byte{byte(sent)}); err == nil {
				sent++
			}
			if eng.Now() < 5*time.Second {
				eng.Schedule(2*time.Millisecond, offer) // 500/s offered
			}
		}
		eng.Schedule(0, offer)
		eng.Run(5 * time.Second)
		return float64(s.Stats().SymbolsDelivered) / 5
	}

	smallWindow := run(8) // in-flight fits the bottleneck queue
	if smallWindow > 110 {
		t.Errorf("MICSS goodput %v/s exceeds slowest channel's 100/s", smallWindow)
	}
	if smallWindow < 80 {
		t.Errorf("MICSS goodput %v/s far below the slowest channel", smallWindow)
	}
	largeWindow := run(64) // overruns the 64-deep queue, thrashes on RTO
	if largeWindow >= smallWindow {
		t.Errorf("window 64 goodput %v/s not degraded vs window 8's %v/s "+
			"(expected RTO thrashing)", largeWindow, smallWindow)
	}
}
