package pathset

import (
	"errors"
	"math"
	"testing"
	"time"
)

// diamond builds the classic two-disjoint-path topology:
//
//	s -> a -> t
//	s -> b -> t
func diamond() []Edge {
	return []Edge{
		{From: "s", To: "a", Risk: 0.1, Loss: 0.01, Delay: time.Millisecond, Rate: 100},
		{From: "a", To: "t", Risk: 0.2, Loss: 0.02, Delay: 2 * time.Millisecond, Rate: 50},
		{From: "s", To: "b", Risk: 0.3, Loss: 0.03, Delay: 3 * time.Millisecond, Rate: 200},
		{From: "b", To: "t", Risk: 0.4, Loss: 0.04, Delay: 4 * time.Millisecond, Rate: 80},
	}
}

func TestDisjointPathsDiamond(t *testing.T) {
	g, err := NewGraph(diamond())
	if err != nil {
		t.Fatal(err)
	}
	paths, err := g.DisjointPaths("s", "t")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("found %d paths, want 2", len(paths))
	}
	// Edge-disjointness.
	seen := map[int]bool{}
	for _, p := range paths {
		for _, idx := range p.EdgeIndices {
			if seen[idx] {
				t.Fatalf("edge %d used twice", idx)
			}
			seen[idx] = true
		}
	}
}

func TestPathChannelComposition(t *testing.T) {
	g, err := NewGraph(diamond())
	if err != nil {
		t.Fatal(err)
	}
	paths, err := g.DisjointPaths("s", "t")
	if err != nil {
		t.Fatal(err)
	}
	set := ChannelSet(paths)
	if err := set.Validate(); err != nil {
		t.Fatalf("derived channel set invalid: %v", err)
	}
	// Identify the s->a->t path and check its composition.
	for _, p := range paths {
		nodes := p.Nodes()
		if len(nodes) == 3 && nodes[1] == "a" {
			c := p.Channel()
			wantRisk := 1 - (1-0.1)*(1-0.2)
			if math.Abs(c.Risk-wantRisk) > 1e-12 {
				t.Errorf("risk = %v, want %v", c.Risk, wantRisk)
			}
			wantLoss := 1 - (1-0.01)*(1-0.02)
			if math.Abs(c.Loss-wantLoss) > 1e-12 {
				t.Errorf("loss = %v, want %v", c.Loss, wantLoss)
			}
			if c.Delay != 3*time.Millisecond {
				t.Errorf("delay = %v, want 3ms", c.Delay)
			}
			if c.Rate != 50 {
				t.Errorf("rate = %v, want bottleneck 50", c.Rate)
			}
		}
	}
}

// TestBridgeRequiresResidual builds a graph where greedy shortest-path
// grabbing picks a path that blocks the second one; only a max-flow
// residual search finds both.
//
//	s -> a -> t
//	s -> b -> t
//	and the tempting "zig" edge a -> b.
//
// Greedy BFS may route s->a->b->t, blocking both simple paths; flow
// augmentation must recover s->a->t and s->b->t.
func TestBridgeRequiresResidual(t *testing.T) {
	edges := []Edge{
		{From: "s", To: "a", Risk: 0.1, Rate: 1},
		{From: "a", To: "b", Risk: 0.1, Rate: 1}, // the trap
		{From: "b", To: "t", Risk: 0.1, Rate: 1},
		{From: "a", To: "t", Risk: 0.1, Rate: 1},
		{From: "s", To: "b", Risk: 0.1, Rate: 1},
	}
	g, err := NewGraph(edges)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := g.DisjointPaths("s", "t")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("found %d paths, want 2 (residual cancellation required)", len(paths))
	}
}

func TestParallelEdgesAreDistinctChannels(t *testing.T) {
	edges := []Edge{
		{From: "s", To: "t", Risk: 0.1, Rate: 10},
		{From: "s", To: "t", Risk: 0.2, Rate: 20},
		{From: "s", To: "t", Risk: 0.3, Rate: 30},
	}
	g, err := NewGraph(edges)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := g.DisjointPaths("s", "t")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("found %d paths, want 3 parallel channels", len(paths))
	}
}

func TestNoPath(t *testing.T) {
	g, err := NewGraph([]Edge{{From: "a", To: "b", Risk: 0, Rate: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.DisjointPaths("b", "a"); !errors.Is(err, ErrNoPath) {
		t.Errorf("got %v, want ErrNoPath", err)
	}
	if _, err := g.DisjointPaths("a", "a"); !errors.Is(err, ErrBadGraph) {
		t.Errorf("src==dst: got %v, want ErrBadGraph", err)
	}
}

func TestGraphValidation(t *testing.T) {
	cases := []struct {
		name string
		e    Edge
	}{
		{"self loop", Edge{From: "a", To: "a", Rate: 1}},
		{"unnamed", Edge{From: "", To: "b", Rate: 1}},
		{"bad risk", Edge{From: "a", To: "b", Risk: 1.5, Rate: 1}},
		{"loss one", Edge{From: "a", To: "b", Loss: 1, Rate: 1}},
		{"negative delay", Edge{From: "a", To: "b", Delay: -time.Second, Rate: 1}},
		{"zero rate", Edge{From: "a", To: "b"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewGraph([]Edge{tc.e}); !errors.Is(err, ErrBadGraph) {
				t.Errorf("got %v, want ErrBadGraph", err)
			}
		})
	}
	if _, err := NewGraph(nil); !errors.Is(err, ErrBadGraph) {
		t.Error("empty graph accepted")
	}
}

func TestNodeDisjointFiltering(t *testing.T) {
	// Two edge-disjoint paths sharing interior node m, plus one through a
	// distinct node.
	edges := []Edge{
		{From: "s", To: "m", Risk: 0.1, Rate: 1},
		{From: "m", To: "t", Risk: 0.1, Rate: 1},
		{From: "s", To: "m", Risk: 0.1, Rate: 1},
		{From: "m", To: "t", Risk: 0.1, Rate: 1},
		{From: "s", To: "x", Risk: 0.1, Rate: 1},
		{From: "x", To: "t", Risk: 0.1, Rate: 1},
	}
	g, err := NewGraph(edges)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := g.DisjointPaths("s", "t")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("edge-disjoint paths = %d, want 3", len(paths))
	}
	nd := NodeDisjoint(paths)
	if len(nd) != 2 {
		t.Fatalf("node-disjoint paths = %d, want 2 (one via m, one via x)", len(nd))
	}
	usedM := 0
	for _, p := range nd {
		for _, n := range p.Nodes() {
			if n == "m" {
				usedM++
			}
		}
	}
	if usedM > 1 {
		t.Errorf("node m appears in %d node-disjoint paths", usedM)
	}
}

// TestOverlapRiskSharedEdge demonstrates the Section III-B argument: a
// shared edge lets one tap collect multiple shares.
func TestOverlapRiskSharedEdge(t *testing.T) {
	// Both "paths" traverse the same first hop s->r (risk 0.5).
	edges := []Edge{
		{From: "s", To: "r", Risk: 0.5, Rate: 10},
		{From: "r", To: "t", Risk: 0.1, Rate: 10},
		{From: "r", To: "t", Risk: 0.1, Rate: 10},
	}
	g, err := NewGraph(edges)
	if err != nil {
		t.Fatal(err)
	}
	shared := []Path{
		{EdgeIndices: []int{0, 1}, graph: g},
		{EdgeIndices: []int{0, 2}, graph: g},
	}
	// With k=2 and disjoint paths, one tap can never yield 2 shares.
	if got := OverlapRisk(shared, 2); got != 0.5 {
		t.Errorf("overlap risk = %v, want 0.5 (tap the shared edge)", got)
	}
	// Disjoint paths: zero.
	disjoint, err := NewGraph([]Edge{
		{From: "s", To: "t", Risk: 0.5, Rate: 1},
		{From: "s", To: "t", Risk: 0.5, Rate: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	dp, err := disjoint.DisjointPaths("s", "t")
	if err != nil {
		t.Fatal(err)
	}
	if got := OverlapRisk(dp, 2); got != 0 {
		t.Errorf("disjoint overlap risk = %v, want 0", got)
	}
	// k=1 is trivially 1 (any tap yields one share).
	if got := OverlapRisk(dp, 0); got != 1 {
		t.Errorf("k=0 overlap risk = %v, want 1", got)
	}
}

func TestNodesAndEdgesAccessors(t *testing.T) {
	g, err := NewGraph(diamond())
	if err != nil {
		t.Fatal(err)
	}
	nodes := g.Nodes()
	want := []string{"a", "b", "s", "t"}
	if len(nodes) != len(want) {
		t.Fatalf("nodes = %v", nodes)
	}
	for i := range want {
		if nodes[i] != want[i] {
			t.Errorf("nodes[%d] = %q, want %q", i, nodes[i], want[i])
		}
	}
	if len(g.Edges()) != 4 {
		t.Errorf("edges = %d", len(g.Edges()))
	}
}

// TestLargerMesh checks flow correctness on a denser topology with a known
// max-flow value.
func TestLargerMesh(t *testing.T) {
	// s has 3 outgoing edges, t has 3 incoming, interior is a full bipartite
	// mesh {a,b,c} x {x,y,z}: max edge-disjoint s-t paths = 3.
	var edges []Edge
	mids1 := []string{"a", "b", "c"}
	mids2 := []string{"x", "y", "z"}
	for _, m := range mids1 {
		edges = append(edges, Edge{From: "s", To: m, Risk: 0.1, Rate: 1})
	}
	for _, m1 := range mids1 {
		for _, m2 := range mids2 {
			edges = append(edges, Edge{From: m1, To: m2, Risk: 0.1, Rate: 1})
		}
	}
	for _, m := range mids2 {
		edges = append(edges, Edge{From: m, To: "t", Risk: 0.1, Rate: 1})
	}
	g, err := NewGraph(edges)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := g.DisjointPaths("s", "t")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("found %d paths, want 3", len(paths))
	}
	set := ChannelSet(paths)
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	// Each path has 3 hops of risk 0.1: composed risk 1-0.9^3.
	wantRisk := 1 - math.Pow(0.9, 3)
	for i, c := range set {
		if math.Abs(c.Risk-wantRisk) > 1e-12 {
			t.Errorf("path %d risk = %v, want %v", i, c.Risk, wantRisk)
		}
	}
}
