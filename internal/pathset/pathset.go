// Package pathset derives channel sets from network topologies.
//
// The PSMT literature the paper builds on (Dolev et al.) models the network
// as a graph and asks how many disjoint paths exist between sender and
// receiver; the paper then abstracts each disjoint path as a channel
// quadruple (z, l, d, r) and notes (Section III-B) that overlapping
// channels are strictly worse: a shared edge gives an eavesdropper multiple
// shares for the price of one and couples loss, delay, and capacity.
//
// This package makes that story concrete:
//
//   - Graph models a network whose edges carry the same four properties as
//     channels.
//   - DisjointPaths extracts a maximum set of edge-disjoint sender→receiver
//     paths (max-flow with unit edge capacities).
//   - Channel composes a path's edge properties into the model's quadruple:
//     risk and loss compound across edges, delay adds, rate bottlenecks.
//   - OverlapRisk quantifies the privacy penalty of non-disjoint channel
//     sets, the effect the paper's disjointness assumption avoids.
package pathset

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"remicss/internal/core"
)

// Edge is a directed network link with the model's four properties.
type Edge struct {
	// From and To are node identifiers.
	From, To string
	// Risk is the probability an adversary observes a share crossing this
	// edge.
	Risk float64
	// Loss is the probability a share is dropped on this edge.
	Loss float64
	// Delay is the edge's one-way latency.
	Delay time.Duration
	// Rate is the edge capacity in share symbols per second.
	Rate float64
}

// Validate checks the edge's properties.
func (e Edge) Validate() error {
	switch {
	case e.From == "" || e.To == "":
		return fmt.Errorf("%w: unnamed endpoint on edge %q->%q", ErrBadGraph, e.From, e.To)
	case e.From == e.To:
		return fmt.Errorf("%w: self-loop at %q", ErrBadGraph, e.From)
	case e.Risk < 0 || e.Risk > 1 || math.IsNaN(e.Risk):
		return fmt.Errorf("%w: edge %s->%s risk %v", ErrBadGraph, e.From, e.To, e.Risk)
	case e.Loss < 0 || e.Loss >= 1 || math.IsNaN(e.Loss):
		return fmt.Errorf("%w: edge %s->%s loss %v", ErrBadGraph, e.From, e.To, e.Loss)
	case e.Delay < 0:
		return fmt.Errorf("%w: edge %s->%s delay %v", ErrBadGraph, e.From, e.To, e.Delay)
	case e.Rate <= 0 || math.IsNaN(e.Rate) || math.IsInf(e.Rate, 0):
		return fmt.Errorf("%w: edge %s->%s rate %v", ErrBadGraph, e.From, e.To, e.Rate)
	}
	return nil
}

// ErrBadGraph marks malformed topologies.
var ErrBadGraph = errors.New("pathset: invalid graph")

// ErrNoPath means the receiver is unreachable from the sender.
var ErrNoPath = errors.New("pathset: no path between endpoints")

// Graph is a directed multigraph. Parallel edges are allowed (two cables
// between the same routers are distinct channels-in-waiting).
type Graph struct {
	edges []Edge
	adj   map[string][]int // node -> indices into edges
}

// NewGraph builds a graph from edges.
func NewGraph(edges []Edge) (*Graph, error) {
	if len(edges) == 0 {
		return nil, fmt.Errorf("%w: no edges", ErrBadGraph)
	}
	g := &Graph{adj: make(map[string][]int)}
	for _, e := range edges {
		if err := e.Validate(); err != nil {
			return nil, err
		}
		g.adj[e.From] = append(g.adj[e.From], len(g.edges))
		g.edges = append(g.edges, e)
	}
	return g, nil
}

// Nodes returns the node identifiers, sorted.
func (g *Graph) Nodes() []string {
	seen := make(map[string]bool)
	for _, e := range g.edges {
		seen[e.From] = true
		seen[e.To] = true
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Edges returns a copy of the edge list.
func (g *Graph) Edges() []Edge {
	return append([]Edge(nil), g.edges...)
}

// Path is a sequence of edge indices from sender to receiver.
type Path struct {
	// EdgeIndices index into the graph's Edges(), in path order.
	EdgeIndices []int
	graph       *Graph
}

// Edges returns the path's edges in order.
func (p Path) Edges() []Edge {
	out := make([]Edge, len(p.EdgeIndices))
	for i, idx := range p.EdgeIndices {
		out[i] = p.graph.edges[idx]
	}
	return out
}

// Nodes returns the node sequence the path visits.
func (p Path) Nodes() []string {
	if len(p.EdgeIndices) == 0 {
		return nil
	}
	out := []string{p.graph.edges[p.EdgeIndices[0]].From}
	for _, idx := range p.EdgeIndices {
		out = append(out, p.graph.edges[idx].To)
	}
	return out
}

// Channel composes the path's edges into the model's channel quadruple:
// a share is observed if any edge leaks it (risk compounds), lost if any
// edge drops it (loss compounds), delayed by the sum, and the path rate is
// the bottleneck edge's rate.
func (p Path) Channel() core.Channel {
	var c core.Channel
	c.Rate = math.Inf(1)
	survive := 1.0
	unobserved := 1.0
	for _, e := range p.Edges() {
		unobserved *= 1 - e.Risk
		survive *= 1 - e.Loss
		c.Delay += e.Delay
		if e.Rate < c.Rate {
			c.Rate = e.Rate
		}
	}
	c.Risk = 1 - unobserved
	c.Loss = 1 - survive
	return c
}

// DisjointPaths extracts a maximum cardinality set of edge-disjoint paths
// from src to dst using BFS augmentation over unit edge capacities
// (Edmonds–Karp on the unit-capacity graph). Paths are returned in
// discovery order; each is simple with respect to edges but may share
// nodes, matching the PSMT edge-disjointness notion. Use NodeDisjoint to
// additionally enforce interior-node disjointness.
func (g *Graph) DisjointPaths(src, dst string) ([]Path, error) {
	if src == dst {
		return nil, fmt.Errorf("%w: src == dst", ErrBadGraph)
	}
	used := make([]bool, len(g.edges))
	// Residual reverse usage: traversing an edge backwards cancels it.
	var paths [][]int
	for {
		parentEdge := g.augment(src, dst, used)
		if parentEdge == nil {
			break
		}
		// Walk back from dst collecting the augmenting path, applying
		// residual cancellation.
		for _, idx := range parentEdge {
			used[idx] = !used[idx]
		}
		paths = append(paths, parentEdge)
	}
	if len(paths) == 0 {
		return nil, ErrNoPath
	}
	// The used[] flags now mark the final flow; decompose it into paths.
	return g.decompose(src, dst, used)
}

// augment finds one augmenting path of edges (forward unused, or backward
// used) from src to dst and returns the forward-oriented edge index list,
// or nil if none exists.
func (g *Graph) augment(src, dst string, used []bool) []int {
	type hop struct {
		node string
		via  int  // edge index
		fwd  bool // traversed forward
		prev int  // index into visitOrder, -1 for root
	}
	visitOrder := []hop{{node: src, via: -1, prev: -1}}
	seen := map[string]bool{src: true}
	// Build reverse adjacency for residual traversal.
	radj := make(map[string][]int)
	for i, e := range g.edges {
		if used[i] {
			radj[e.To] = append(radj[e.To], i)
		}
	}
	for qi := 0; qi < len(visitOrder); qi++ {
		cur := visitOrder[qi]
		if cur.node == dst {
			// Reconstruct.
			var edges []int
			for i := qi; visitOrder[i].prev != -1; i = visitOrder[i].prev {
				edges = append(edges, visitOrder[i].via)
			}
			return edges
		}
		for _, idx := range g.adj[cur.node] {
			e := g.edges[idx]
			if used[idx] || seen[e.To] {
				continue
			}
			seen[e.To] = true
			visitOrder = append(visitOrder, hop{node: e.To, via: idx, fwd: true, prev: qi})
		}
		for _, idx := range radj[cur.node] {
			e := g.edges[idx]
			if seen[e.From] {
				continue
			}
			// Traversing a used edge backwards: the "arrival" node is its
			// tail.
			seen[e.From] = true
			visitOrder = append(visitOrder, hop{node: e.From, via: idx, fwd: false, prev: qi})
		}
	}
	return nil
}

// decompose splits the flow marked by used[] into edge-disjoint paths.
func (g *Graph) decompose(src, dst string, used []bool) ([]Path, error) {
	remaining := append([]bool(nil), used...)
	var paths []Path
	for {
		var trail []int
		node := src
		for node != dst {
			found := -1
			for _, idx := range g.adj[node] {
				if remaining[idx] {
					found = idx
					break
				}
			}
			if found == -1 {
				break
			}
			remaining[found] = false
			trail = append(trail, found)
			node = g.edges[found].To
		}
		if node != dst || len(trail) == 0 {
			break
		}
		paths = append(paths, Path{EdgeIndices: trail, graph: g})
	}
	if len(paths) == 0 {
		return nil, ErrNoPath
	}
	return paths, nil
}

// NodeDisjoint filters paths to a set that shares no interior nodes,
// greedily keeping earlier paths. Endpoint nodes are exempt.
func NodeDisjoint(paths []Path) []Path {
	usedNodes := make(map[string]bool)
	var out []Path
	for _, p := range paths {
		nodes := p.Nodes()
		interior := nodes[1 : len(nodes)-1]
		conflict := false
		for _, n := range interior {
			if usedNodes[n] {
				conflict = true
				break
			}
		}
		if conflict {
			continue
		}
		for _, n := range interior {
			usedNodes[n] = true
		}
		out = append(out, p)
	}
	return out
}

// ChannelSet converts paths into the model's channel set, in path order.
func ChannelSet(paths []Path) core.Set {
	set := make(core.Set, len(paths))
	for i, p := range paths {
		set[i] = p.Channel()
	}
	return set
}

// OverlapRisk quantifies the paper's disjointness argument. Given paths
// that may share edges, it returns the probability that an adversary who
// taps the single highest-value edge observes at least k shares of a
// symbol sent with one share per path, compared with the best the
// adversary can do against edge-disjoint paths (where one tap yields one
// share, so the probability of k >= 2 shares from one tap is zero).
func OverlapRisk(paths []Path, k int) float64 {
	if k < 1 {
		return 1
	}
	// Count path multiplicity per edge.
	count := make(map[int]int)
	for _, p := range paths {
		for _, idx := range p.EdgeIndices {
			count[idx]++
		}
	}
	worst := 0.0
	for idx, c := range count {
		if c >= k {
			if z := paths[0].graph.edges[idx].Risk; z > worst {
				worst = z
			}
		}
	}
	return worst
}
