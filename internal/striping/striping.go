// Package striping implements the throughput-maximizing baseline of the
// paper's Section IV-C: κ = μ = 1, with each source symbol sent whole on a
// single channel chosen in proportion to channel rate — the ideal behavior
// of multipath protocols like MPTCP.
//
// The chooser uses deterministic smallest-deficit (stride) scheduling
// rather than random sampling, so the symbol stream matches the
// proportional schedule p(1, {i}) = r_i / R_C exactly over any window, not
// just in expectation. It plugs into the remicss.Sender as a Chooser,
// making the baseline a configuration of the same machinery rather than a
// separate code path.
package striping

import (
	"errors"
	"fmt"

	"remicss/internal/remicss"
)

// Chooser assigns each symbol to one channel by weighted deficit
// round-robin. It implements remicss.Chooser.
type Chooser struct {
	weights []float64
	deficit []float64
	total   float64
	// skipUnwritable makes the chooser fall through to the next-best
	// writable channel instead of reporting backpressure.
	skipUnwritable bool
}

// Option configures a Chooser.
type Option func(*Chooser)

// SkipUnwritable lets the chooser divert a symbol to the next channel by
// deficit when its first choice is not writable, mimicking an opportunistic
// multipath scheduler.
func SkipUnwritable() Option {
	return func(c *Chooser) { c.skipUnwritable = true }
}

// New builds a striping chooser over channels with the given rates
// (weights). All rates must be positive.
func New(rates []float64, opts ...Option) (*Chooser, error) {
	if len(rates) == 0 {
		return nil, errors.New("striping: no channels")
	}
	if len(rates) > 32 {
		return nil, fmt.Errorf("striping: %d channels exceeds mask limit", len(rates))
	}
	var total float64
	for i, r := range rates {
		if r <= 0 {
			return nil, fmt.Errorf("striping: non-positive rate %v on channel %d", r, i)
		}
		total += r
	}
	c := &Chooser{
		weights: append([]float64(nil), rates...),
		deficit: make([]float64, len(rates)),
		total:   total,
	}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// Choose implements remicss.Chooser with k = 1 and a single channel: the
// one with the largest accumulated deficit.
func (c *Chooser) Choose(links []remicss.Link) (int, uint32, bool) {
	if len(links) != len(c.weights) {
		return 0, 0, false
	}
	// Accumulate one symbol's worth of credit proportionally.
	for i := range c.deficit {
		c.deficit[i] += c.weights[i] / c.total
	}
	// Pick the most-credited channel, optionally skipping unwritable ones.
	best := -1
	for i := range c.deficit {
		if c.skipUnwritable && !links[i].Writable() {
			continue
		}
		if best == -1 || c.deficit[i] > c.deficit[best] {
			best = i
		}
	}
	if best == -1 || !links[best].Writable() {
		// Refund this round so credit accounting stays consistent when the
		// symbol is retried.
		for i := range c.deficit {
			c.deficit[i] -= c.weights[i] / c.total
		}
		return 0, 0, false
	}
	c.deficit[best]--
	return 1, 1 << uint(best), true
}
