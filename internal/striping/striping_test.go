package striping

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"remicss/internal/netem"
	"remicss/internal/remicss"
	"remicss/internal/sharing"
)

func makeLinks(t testing.TB, eng *netem.Engine, cfgs []netem.LinkConfig) []remicss.Link {
	t.Helper()
	links := make([]remicss.Link, len(cfgs))
	for i, cfg := range cfgs {
		l, err := netem.NewLink(eng, cfg, rand.New(rand.NewSource(int64(i)+1)), nil)
		if err != nil {
			t.Fatal(err)
		}
		links[i] = l
	}
	return links
}

func TestProportionsExact(t *testing.T) {
	rates := []float64{5, 20, 60, 65, 100} // total 250
	c, err := New(rates)
	if err != nil {
		t.Fatal(err)
	}
	eng := netem.NewEngine()
	cfgs := make([]netem.LinkConfig, len(rates))
	for i := range cfgs {
		cfgs[i] = netem.LinkConfig{Rate: 1e9, QueueLimit: 1 << 20}
	}
	links := makeLinks(t, eng, cfgs)

	counts := make([]int, len(rates))
	const symbols = 250 * 40 // an exact multiple of the total rate
	for i := 0; i < symbols; i++ {
		k, mask, ok := c.Choose(links)
		if !ok {
			t.Fatal("choose failed")
		}
		if k != 1 {
			t.Fatalf("k = %d, want 1", k)
		}
		for j := range rates {
			if mask == 1<<uint(j) {
				counts[j]++
			}
		}
	}
	for j, r := range rates {
		want := int(r / 250 * symbols)
		if counts[j] != want {
			t.Errorf("channel %d: %d symbols, want exactly %d", j, counts[j], want)
		}
	}
}

func TestDeterministic(t *testing.T) {
	rates := []float64{3, 4, 8}
	run := func() []uint32 {
		c, err := New(rates)
		if err != nil {
			t.Fatal(err)
		}
		eng := netem.NewEngine()
		cfgs := make([]netem.LinkConfig, 3)
		for i := range cfgs {
			cfgs[i] = netem.LinkConfig{Rate: 1e9, QueueLimit: 1 << 20}
		}
		links := makeLinks(t, eng, cfgs)
		var masks []uint32
		for i := 0; i < 100; i++ {
			_, mask, ok := c.Choose(links)
			if !ok {
				t.Fatal("choose failed")
			}
			masks = append(masks, mask)
		}
		return masks
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("choice %d diverged: %b vs %b", i, a[i], b[i])
		}
	}
}

func TestBackpressureWithoutSkip(t *testing.T) {
	c, err := New([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	eng := netem.NewEngine()
	links := makeLinks(t, eng, []netem.LinkConfig{
		{Rate: 1, QueueLimit: 1},
		{Rate: 1, QueueLimit: 1},
	})
	// Fill channel 0 (first pick by deficit tie -> index 0).
	_, mask, ok := c.Choose(links)
	if !ok || mask != 0b01 {
		t.Fatalf("first choice = %b ok=%v, want channel 0", mask, ok)
	}
	links[0].Send([]byte{0})
	links[1].Send([]byte{0})
	if _, _, ok := c.Choose(links); ok {
		t.Error("choose succeeded with chosen channel unwritable")
	}
	// Refund means deficits are unchanged: after drain, next pick is
	// channel 1.
	eng.RunUntilIdle()
	_, mask, ok = c.Choose(links)
	if !ok || mask != 0b10 {
		t.Errorf("after refund, choice = %b ok=%v, want channel 1", mask, ok)
	}
}

func TestSkipUnwritable(t *testing.T) {
	c, err := New([]float64{100, 1}, SkipUnwritable())
	if err != nil {
		t.Fatal(err)
	}
	eng := netem.NewEngine()
	links := makeLinks(t, eng, []netem.LinkConfig{
		{Rate: 1, QueueLimit: 1},
		{Rate: 1, QueueLimit: 1},
	})
	links[0].Send([]byte{0}) // channel 0 (the heavy one) is now full
	_, mask, ok := c.Choose(links)
	if !ok {
		t.Fatal("skip-unwritable chooser reported backpressure")
	}
	if mask != 0b10 {
		t.Errorf("choice = %b, want fallback channel 1", mask)
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("empty rates accepted")
	}
	if _, err := New([]float64{1, 0}); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := New([]float64{1, -2}); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := New(make([]float64, 33)); err == nil {
		t.Error("33 channels accepted")
	}
	c, err := New([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.Choose(nil); ok {
		t.Error("mismatched link count accepted")
	}
}

// TestAchievesAggregateRate runs the striping chooser through the full
// protocol stack and verifies it achieves ~ΣR, the κ=μ=1 optimum.
func TestAchievesAggregateRate(t *testing.T) {
	rates := []float64{50, 200, 600, 650, 1000} // total 2500 pkt/s
	eng := netem.NewEngine()
	delivered := 0
	scheme := sharing.NewAuto(rand.New(rand.NewSource(1)))
	recv, err := remicss.NewReceiver(remicss.ReceiverConfig{
		Scheme:   scheme,
		Clock:    eng.Now,
		OnSymbol: func(uint64, []byte, time.Duration) { delivered++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	links := make([]remicss.Link, len(rates))
	for i, r := range rates {
		l, err := netem.NewLink(eng, netem.LinkConfig{Rate: r},
			rand.New(rand.NewSource(int64(i)+7)),
			func(p []byte, _ time.Duration) { recv.HandleDatagram(p) })
		if err != nil {
			t.Fatal(err)
		}
		links[i] = l
	}
	chooser, err := New(rates)
	if err != nil {
		t.Fatal(err)
	}
	snd, err := remicss.NewSender(remicss.SenderConfig{
		Scheme:  scheme,
		Chooser: chooser,
		Clock:   eng.Now,
	}, links)
	if err != nil {
		t.Fatal(err)
	}
	// Offer 2x capacity for 10 virtual seconds.
	interval := time.Duration(float64(time.Second) / 5000)
	var offer func()
	offer = func() {
		_ = snd.Send([]byte{1, 2, 3, 4})
		if eng.Now() < 10*time.Second {
			eng.Schedule(interval, offer)
		}
	}
	eng.Schedule(0, offer)
	eng.Run(10 * time.Second)
	eng.RunUntilIdle()
	rate := float64(delivered) / 10
	if math.Abs(rate-2500)/2500 > 0.05 {
		t.Errorf("striping achieved %v pkt/s, want ~2500", rate)
	}
}
