package measure

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"remicss/internal/core"
	"remicss/internal/remicss"
)

// Probe datagram layout: magic (2) | seq (8) | sentAt (8).
const (
	probeSize  = 18
	probeMagic = 0x5052 // "PR"
)

// ErrNotProbe marks datagrams that are not probe packets.
var ErrNotProbe = errors.New("measure: not a probe datagram")

// EncodeProbe builds a probe datagram.
func EncodeProbe(seq uint64, sentAt time.Duration) []byte {
	buf := make([]byte, probeSize)
	binary.BigEndian.PutUint16(buf[0:2], probeMagic)
	binary.BigEndian.PutUint64(buf[2:10], seq)
	binary.BigEndian.PutUint64(buf[10:18], uint64(sentAt))
	return buf
}

// DecodeProbe parses a probe datagram.
func DecodeProbe(buf []byte) (seq uint64, sentAt time.Duration, err error) {
	if len(buf) != probeSize || binary.BigEndian.Uint16(buf[0:2]) != probeMagic {
		return 0, 0, ErrNotProbe
	}
	return binary.BigEndian.Uint64(buf[2:10]),
		time.Duration(binary.BigEndian.Uint64(buf[10:18])), nil
}

// Prober sends numbered, timestamped probes over one channel. Pair it with
// a Sink on the receiving side to estimate the channel's (l, d, r).
type Prober struct {
	link  remicss.Link
	clock func() time.Duration
	seq   uint64
	sent  int64
}

// NewProber builds a prober over the link using the given clock.
func NewProber(link remicss.Link, clock func() time.Duration) (*Prober, error) {
	if link == nil {
		return nil, errors.New("measure: nil link")
	}
	if clock == nil {
		return nil, errors.New("measure: nil clock")
	}
	return &Prober{link: link, clock: clock}, nil
}

// Probe sends one probe; false means the channel refused it (also counted,
// since refusals at a given offered rate reveal the rate limit).
func (p *Prober) Probe() bool {
	ok := p.link.Send(EncodeProbe(p.seq, p.clock()))
	p.seq++
	if ok {
		p.sent++
	}
	return ok
}

// Attempts returns the number of probes attempted (accepted or refused).
func (p *Prober) Attempts() uint64 { return p.seq }

// Accepted returns the number the channel accepted.
func (p *Prober) Accepted() int64 { return p.sent }

// Sink accumulates probe arrivals into channel estimates.
type Sink struct {
	clock func() time.Duration
	loss  *LossEstimator
	delay DelayEstimator
	rate  *RateMeter
}

// NewSink builds a probe sink. window sets the rate-measurement window;
// slack the loss estimator's reordering tolerance.
func NewSink(clock func() time.Duration, window time.Duration, slack int) (*Sink, error) {
	if clock == nil {
		return nil, errors.New("measure: nil clock")
	}
	loss, err := NewLossEstimator(slack)
	if err != nil {
		return nil, err
	}
	rate, err := NewRateMeter(window)
	if err != nil {
		return nil, err
	}
	return &Sink{clock: clock, loss: loss, rate: rate}, nil
}

// Handle processes one received datagram; non-probe datagrams are reported
// as ErrNotProbe and otherwise ignored.
func (s *Sink) Handle(buf []byte) error {
	seq, sentAt, err := DecodeProbe(buf)
	if err != nil {
		return err
	}
	now := s.clock()
	s.loss.Observe(seq)
	s.delay.Observe(now - sentAt)
	s.rate.Observe(now, 1)
	return nil
}

// Estimate summarizes the probes into a channel quadruple. Risk must be
// supplied by the caller (from internal/risk); it is not observable from
// probe traffic.
func (s *Sink) Estimate(risk float64) (core.Channel, error) {
	d, ok := s.delay.Smoothed()
	if !ok {
		return core.Channel{}, fmt.Errorf("measure: no probes received")
	}
	c := core.Channel{
		Risk:  risk,
		Loss:  s.loss.Fraction(),
		Delay: d,
		Rate:  s.rate.Rate(s.clock()),
	}
	if c.Rate <= 0 {
		// The window may have expired since the last probe; rate of the
		// whole run is unknown, fall back to a minimal positive rate so the
		// quadruple stays in the model's domain.
		c.Rate = 1e-9
	}
	return c, nil
}
