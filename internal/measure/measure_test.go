package measure

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"remicss/internal/netem"
)

func TestEWMA(t *testing.T) {
	e, err := NewEWMA(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Value(); ok {
		t.Error("unprimed EWMA reports a value")
	}
	e.Observe(10)
	if v, _ := e.Value(); v != 10 {
		t.Errorf("first sample = %v", v)
	}
	e.Observe(20)
	if v, _ := e.Value(); v != 15 {
		t.Errorf("after second sample = %v, want 15", v)
	}
	for _, bad := range []float64{0, -1, 1.5, math.NaN()} {
		if _, err := NewEWMA(bad); err == nil {
			t.Errorf("alpha %v accepted", bad)
		}
	}
}

func TestDelayEstimatorConverges(t *testing.T) {
	var d DelayEstimator
	if _, ok := d.Smoothed(); ok {
		t.Error("unprimed estimator reports a value")
	}
	for i := 0; i < 200; i++ {
		d.Observe(10 * time.Millisecond)
	}
	got, _ := d.Smoothed()
	if got != 10*time.Millisecond {
		t.Errorf("smoothed = %v, want 10ms", got)
	}
	if d.Variation() > time.Millisecond {
		t.Errorf("variation = %v for constant input", d.Variation())
	}
	// A step change moves the estimate toward the new level.
	for i := 0; i < 50; i++ {
		d.Observe(30 * time.Millisecond)
	}
	got, _ = d.Smoothed()
	if got < 25*time.Millisecond {
		t.Errorf("smoothed = %v after step to 30ms", got)
	}
}

func TestLossEstimatorCleanStream(t *testing.T) {
	l, err := NewLossEstimator(4)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(0); seq < 100; seq++ {
		l.Observe(seq)
	}
	if got := l.Fraction(); got != 0 {
		t.Errorf("loss = %v on clean stream", got)
	}
	recv, lost := l.Counts()
	if recv != 100 || lost != 0 {
		t.Errorf("counts = (%d, %d)", recv, lost)
	}
}

func TestLossEstimatorDetectsGaps(t *testing.T) {
	l, err := NewLossEstimator(0)
	if err != nil {
		t.Fatal(err)
	}
	// Drop every 5th of 1000.
	for seq := uint64(0); seq < 1000; seq++ {
		if seq%5 == 4 {
			continue
		}
		l.Observe(seq)
	}
	if got := l.Fraction(); math.Abs(got-0.2) > 0.01 {
		t.Errorf("loss = %v, want ~0.2", got)
	}
}

func TestLossEstimatorToleratesReordering(t *testing.T) {
	l, err := NewLossEstimator(4)
	if err != nil {
		t.Fatal(err)
	}
	// Swap adjacent pairs: 1,0,3,2,...; nothing actually lost.
	for seq := uint64(0); seq < 100; seq += 2 {
		l.Observe(seq + 1)
		l.Observe(seq)
	}
	if got := l.Fraction(); got != 0 {
		t.Errorf("loss = %v for reordered-only stream", got)
	}
	if _, err := NewLossEstimator(-1); err == nil {
		t.Error("negative slack accepted")
	}
}

func TestLossEstimatorDuplicatesIgnored(t *testing.T) {
	l, err := NewLossEstimator(2)
	if err != nil {
		t.Fatal(err)
	}
	l.Observe(0)
	l.Observe(0)
	l.Observe(1)
	recv, lost := l.Counts()
	if recv != 2 || lost != 0 {
		t.Errorf("counts = (%d, %d), want (2, 0)", recv, lost)
	}
}

func TestRateMeterWindow(t *testing.T) {
	r, err := NewRateMeter(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// 100 units spread over the first second.
	for i := 0; i < 100; i++ {
		r.Observe(time.Duration(i)*10*time.Millisecond, 1)
	}
	if got := r.Rate(time.Second); math.Abs(got-100) > 2 {
		t.Errorf("rate = %v, want ~100", got)
	}
	// Two seconds later the window is empty.
	if got := r.Rate(3 * time.Second); got != 0 {
		t.Errorf("rate = %v after window expiry", got)
	}
	if _, err := NewRateMeter(0); err == nil {
		t.Error("zero window accepted")
	}
}

func TestProbeEncodeDecode(t *testing.T) {
	buf := EncodeProbe(42, 7*time.Millisecond)
	seq, at, err := DecodeProbe(buf)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 42 || at != 7*time.Millisecond {
		t.Errorf("decoded (%d, %v)", seq, at)
	}
	if _, _, err := DecodeProbe(buf[:probeSize-1]); !errors.Is(err, ErrNotProbe) {
		t.Errorf("short datagram: got %v", err)
	}
	bad := append([]byte(nil), buf...)
	bad[0] = 'X'
	if _, _, err := DecodeProbe(bad); !errors.Is(err, ErrNotProbe) {
		t.Errorf("bad magic: got %v", err)
	}
}

// TestProbeEstimatesChannel drives a Prober/Sink pair over an emulated
// channel with known properties and checks the estimates.
func TestProbeEstimatesChannel(t *testing.T) {
	eng := netem.NewEngine()
	sink, err := NewSink(eng.Now, time.Second, 8)
	if err != nil {
		t.Fatal(err)
	}
	link, err := netem.NewLink(eng, netem.LinkConfig{
		Rate:       1000,
		Loss:       0.1,
		Delay:      20 * time.Millisecond,
		QueueLimit: 64,
	}, rand.New(rand.NewSource(1)), func(p []byte, _ time.Duration) {
		if err := sink.Handle(p); err != nil {
			t.Errorf("sink: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	prober, err := NewProber(link, eng.Now)
	if err != nil {
		t.Fatal(err)
	}
	// Offer at 80% of capacity for 5 virtual seconds.
	interval := 1250 * time.Microsecond
	var send func()
	send = func() {
		prober.Probe()
		if eng.Now() < 5*time.Second {
			eng.Schedule(interval, send)
		}
	}
	eng.Schedule(0, send)
	eng.Run(5 * time.Second)

	est, err := sink.Estimate(0.25)
	if err != nil {
		t.Fatal(err)
	}
	if est.Risk != 0.25 {
		t.Errorf("risk = %v (caller-supplied)", est.Risk)
	}
	if math.Abs(est.Loss-0.1) > 0.02 {
		t.Errorf("loss estimate = %v, want ~0.1", est.Loss)
	}
	// One-way delay = serialization (1ms at 1000pps) + 20ms propagation.
	if est.Delay < 20*time.Millisecond || est.Delay > 25*time.Millisecond {
		t.Errorf("delay estimate = %v, want ~21ms", est.Delay)
	}
	// Received rate ~ offered * (1-loss) = 720/s.
	if math.Abs(est.Rate-720) > 40 {
		t.Errorf("rate estimate = %v, want ~720", est.Rate)
	}
	if prober.Attempts() == 0 || prober.Accepted() == 0 {
		t.Error("prober counted nothing")
	}
}

func TestSinkNoProbes(t *testing.T) {
	sink, err := NewSink(func() time.Duration { return 0 }, time.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sink.Estimate(0); err == nil {
		t.Error("estimate with no probes succeeded")
	}
	if err := sink.Handle([]byte("junk")); !errors.Is(err, ErrNotProbe) {
		t.Errorf("junk handled: %v", err)
	}
}

func TestProberValidation(t *testing.T) {
	eng := netem.NewEngine()
	link, err := netem.NewLink(eng, netem.LinkConfig{Rate: 1}, rand.New(rand.NewSource(1)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewProber(nil, eng.Now); err == nil {
		t.Error("nil link accepted")
	}
	if _, err := NewProber(link, nil); err == nil {
		t.Error("nil clock accepted")
	}
	if _, err := NewSink(nil, time.Second, 0); err == nil {
		t.Error("nil clock accepted for sink")
	}
}
