// Package measure estimates channel properties from live traffic.
//
// The model consumes a measured channel quadruple (z, l, d, r); the paper
// obtains l, d, r with iperf runs before each experiment. This package
// provides the estimators a deployment needs to do the same continuously:
//
//   - EWMA: exponentially weighted moving average, the basic smoother.
//   - DelayEstimator: RFC 6298-style smoothed delay plus variance.
//   - LossEstimator: loss fraction from sequence-number gaps, RTP-style.
//   - RateMeter: windowed throughput.
//   - Prober/Sink: an active probing pair that runs over any remicss.Link
//     and yields a core.Channel estimate for the path.
//
// Risk (z) is not observable from traffic; estimate it with internal/risk.
package measure

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// EWMA is an exponentially weighted moving average. The zero value is not
// ready; construct with NewEWMA.
type EWMA struct {
	alpha  float64
	value  float64
	primed bool
}

// NewEWMA creates an EWMA with smoothing factor alpha in (0, 1]; larger
// alpha weights new samples more.
func NewEWMA(alpha float64) (*EWMA, error) {
	if alpha <= 0 || alpha > 1 || math.IsNaN(alpha) {
		return nil, fmt.Errorf("measure: alpha %v outside (0, 1]", alpha)
	}
	return &EWMA{alpha: alpha}, nil
}

// Observe folds in a sample. The first sample initializes the average.
func (e *EWMA) Observe(sample float64) {
	if !e.primed {
		e.value = sample
		e.primed = true
		return
	}
	e.value += e.alpha * (sample - e.value)
}

// Value returns the current average; false until the first sample.
func (e *EWMA) Value() (float64, bool) { return e.value, e.primed }

// DelayEstimator tracks smoothed one-way delay and its variation with the
// RFC 6298 gains (1/8 for the mean, 1/4 for the deviation).
type DelayEstimator struct {
	srtt, rttvar time.Duration
	primed       bool
}

// Observe folds in one delay sample.
func (d *DelayEstimator) Observe(sample time.Duration) {
	if !d.primed {
		d.srtt = sample
		d.rttvar = sample / 2
		d.primed = true
		return
	}
	diff := d.srtt - sample
	if diff < 0 {
		diff = -diff
	}
	d.rttvar += (diff - d.rttvar) / 4
	d.srtt += (sample - d.srtt) / 8
}

// Smoothed returns the smoothed delay; false until the first sample.
func (d *DelayEstimator) Smoothed() (time.Duration, bool) { return d.srtt, d.primed }

// Variation returns the smoothed delay variation.
func (d *DelayEstimator) Variation() time.Duration { return d.rttvar }

// LossEstimator infers loss from a monotonically increasing sequence
// stream: a received sequence above the next expected one implies the gap
// was lost (late reordering within `reorderSlack` is tolerated by keeping
// recent gaps provisional).
type LossEstimator struct {
	next     uint64
	received int64
	lost     int64
	pending  map[uint64]struct{} // provisional losses awaiting late arrival
	slack    int
	order    []uint64
}

// NewLossEstimator builds an estimator tolerating reordering up to slack
// outstanding gaps (0 means strict ordering).
func NewLossEstimator(slack int) (*LossEstimator, error) {
	if slack < 0 {
		return nil, errors.New("measure: negative reorder slack")
	}
	return &LossEstimator{pending: make(map[uint64]struct{}), slack: slack}, nil
}

// Observe records arrival of the given sequence number.
func (l *LossEstimator) Observe(seq uint64) {
	switch {
	case seq == l.next:
		l.received++
		l.next++
	case seq > l.next:
		// Everything between next and seq is provisionally lost.
		for s := l.next; s < seq && len(l.pending) < 1<<20; s++ {
			l.pending[s] = struct{}{}
			l.order = append(l.order, s)
		}
		l.received++
		l.next = seq + 1
	default: // late arrival
		if _, ok := l.pending[seq]; ok {
			delete(l.pending, seq)
			l.received++
		}
		// Otherwise a duplicate or ancient packet: ignore.
	}
	// Gaps older than the slack window become definitive losses.
	for len(l.order) > 0 && len(l.pending) > l.slack {
		s := l.order[0]
		l.order = l.order[1:]
		if _, ok := l.pending[s]; ok {
			delete(l.pending, s)
			l.lost++
		}
	}
}

// Fraction returns the loss estimate lost/(lost+received); 0 before any
// data.
func (l *LossEstimator) Fraction() float64 {
	total := l.lost + l.received
	if total == 0 {
		return 0
	}
	return float64(l.lost) / float64(total)
}

// Counts returns (received, lost) so far, excluding provisional gaps.
func (l *LossEstimator) Counts() (received, lost int64) { return l.received, l.lost }

// RateMeter measures throughput over a sliding window.
type RateMeter struct {
	window  time.Duration
	samples []rateSample
	total   int64
}

type rateSample struct {
	at time.Duration
	n  int64
}

// NewRateMeter builds a meter with the given averaging window.
func NewRateMeter(window time.Duration) (*RateMeter, error) {
	if window <= 0 {
		return nil, errors.New("measure: non-positive window")
	}
	return &RateMeter{window: window}, nil
}

// Observe records n units (symbols, bytes) at the given clock reading.
func (r *RateMeter) Observe(now time.Duration, n int64) {
	r.samples = append(r.samples, rateSample{at: now, n: n})
	r.total += n
	r.expire(now)
}

// Rate returns units per second over the window ending at now.
func (r *RateMeter) Rate(now time.Duration) float64 {
	r.expire(now)
	if len(r.samples) == 0 {
		return 0
	}
	span := r.window.Seconds()
	return float64(r.total) / span
}

func (r *RateMeter) expire(now time.Duration) {
	cut := 0
	for cut < len(r.samples) && now-r.samples[cut].at > r.window {
		r.total -= r.samples[cut].n
		cut++
	}
	if cut > 0 {
		r.samples = append(r.samples[:0], r.samples[cut:]...)
	}
}
