// Package leakage bounds the statistical advantage a partial-observation
// adversary gains against the threshold scheme, in the style of Gupta &
// Mahdavifar's leakage-resilience analysis of Shamir sharing
// (arXiv:2405.04622).
//
// The paper's risk model z(k, M) is all-or-nothing: a symbol is "exposed"
// only when the adversary captures k full shares, and perfectly private
// otherwise. That is exact for an adversary who either taps a channel or
// does not, but real side channels leak fractions of shares — timing,
// length, radiated emissions, partially decrypted captures. This package
// models that with a per-share leakage rate λ (Config.PartialBits): from
// every share the adversary does NOT fully capture, it still learns λ bits.
// The advantage of distinguishing the secret is then bounded by
//
//	ε ≤ P(X ≥ k) + Σ_{t<k} P(X = t) · min(1, 2^{λ·(m−t) − F·(k−t)})
//
// where X is the number of fully observed shares out of m, F is the field
// width in bits per share symbol (8 for the GF(2^8) codec), and the min(1,·)
// term is the distinguishing advantage of an adversary holding t full
// shares plus λ·(m−t) leaked bits against the F·(k−t) bits of fresh entropy
// the scheme still hides. At λ = 0 the bound collapses to P(X ≥ k) — the
// paper's exposure — reflecting Shamir's perfect secrecy below threshold.
//
// The Meter aggregates these bounds over a live stream of scheduled
// symbols, fed from sender schedule commitments and receiver/obs
// share-exposure counts, and exports remicss_privacy_* metric series plus a
// privacy-alert trace event when a symbol's bound exceeds the configured
// budget.
package leakage

import (
	"fmt"
	"math"
	"strconv"
	"sync"
	"time"

	"remicss/internal/core"
	"remicss/internal/obs"
	"remicss/internal/stats"
)

// Config parameterizes the leakage model.
type Config struct {
	// FieldBits is the field width F in bits per share symbol. 0 means the
	// GF(2^8) codec's 8.
	FieldBits int
	// PartialBits is λ: the bits of side-channel information the adversary
	// extracts from each share it does not fully observe. 0 models the
	// paper's all-or-nothing adversary, under which the advantage bound
	// equals the subset exposure exactly.
	PartialBits float64
	// Budget is the adversary-advantage budget per symbol. When positive,
	// a symbol whose bound exceeds it raises the privacy-alert counter and
	// trace event. 0 disables alerting.
	Budget float64
}

func (c Config) withDefaults() Config {
	if c.FieldBits == 0 {
		c.FieldBits = 8
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.FieldBits < 0 {
		return fmt.Errorf("leakage: negative field width %d", c.FieldBits)
	}
	if c.PartialBits < 0 || math.IsNaN(c.PartialBits) {
		return fmt.Errorf("leakage: invalid partial-share leakage %v", c.PartialBits)
	}
	if c.Budget < 0 || c.Budget > 1 || math.IsNaN(c.Budget) {
		return fmt.Errorf("leakage: advantage budget %v outside [0, 1]", c.Budget)
	}
	return nil
}

// AdvantageBound computes the per-symbol advantage bound ε for a k-threshold
// symbol whose shares cross channels observed independently with the given
// probabilities. With Config.PartialBits zero this equals the paper's
// exposure z(k, M) bit-exactly.
func AdvantageBound(probs []float64, k int, cfg Config) float64 {
	return AdvantageBoundPMF(stats.Distribution(probs), k, cfg)
}

// AdvantageBoundPMF computes the advantage bound from a precomputed pmf of
// the fully-observed share count (pmf[t] = P(X = t), len(pmf) = m+1). This
// is the entry point for correlated models, whose observed-count
// distribution is a shock-pattern mixture rather than a Poisson binomial —
// see core.CorrelatedObservedPMF.
func AdvantageBoundPMF(pmf []float64, k int, cfg Config) float64 {
	cfg = cfg.withDefaults()
	m := len(pmf) - 1
	var eps float64
	for t := m; t >= 0; t-- {
		if t >= k {
			// Fully exposed: k shares reconstruct the symbol outright.
			eps += pmf[t]
			continue
		}
		if cfg.PartialBits == 0 {
			// Below threshold with no partial leakage: Shamir's perfect
			// secrecy leaves zero advantage. Skipping the term (rather
			// than adding pmf[t]·0) keeps the λ=0 bound bit-identical to
			// stats.TailAtLeast.
			continue
		}
		deficit := cfg.PartialBits*float64(m-t) - float64(cfg.FieldBits)*float64(k-t)
		adv := math.Exp2(deficit)
		if adv > 1 {
			adv = 1
		}
		eps += pmf[t] * adv
	}
	if eps > 1 {
		return 1
	}
	if eps < 0 {
		return 0
	}
	return eps
}

// CorrelatedAdvantageBound computes the advantage bound for a symbol sent
// over mask under a correlated-adversary model: the observed-share count is
// the common-cause mixture distribution rather than the independent Poisson
// binomial. It is never smaller than AdvantageBound over the same marginals
// when the symbol straddles a shared-risk group.
func CorrelatedAdvantageBound(set core.Set, corr core.Correlation, k int, mask uint32, cfg Config) float64 {
	return AdvantageBoundPMF(set.CorrelatedObservedPMF(corr, mask), k, cfg)
}

// Score is the privacy verdict for one scheduled symbol.
type Score struct {
	// Exposure is P(X >= k): the probability the adversary captures a
	// reconstructing share set — the paper's z(k, M) under whichever
	// observation model produced the pmf.
	Exposure float64
	// Advantage is the leakage-aware bound ε >= Exposure.
	Advantage float64
	// Alert reports whether Advantage exceeded the configured budget.
	Alert bool
}

// Stats is an aggregate snapshot of a Meter.
type Stats struct {
	// Symbols is the number of symbols scored.
	Symbols int64
	// Alerts is the number of symbols whose advantage bound exceeded the
	// budget.
	Alerts int64
	// MaxExposure is the largest per-symbol exposure seen.
	MaxExposure float64
	// MaxAdvantage is the largest per-symbol advantage bound seen.
	MaxAdvantage float64
	// MeanAdvantage is the mean advantage bound across scored symbols.
	MeanAdvantage float64
	// SharesObserved counts shares recorded as exposed, per channel.
	SharesObserved []int64
}

// Meter aggregates per-symbol advantage bounds over a live session and
// exports them as remicss_privacy_* series. Construct with NewMeter; all
// methods are safe for concurrent use.
type Meter struct {
	cfg   Config
	trace *obs.Trace

	mu       sync.Mutex
	symbols  int64
	alerts   int64
	maxExp   float64
	maxAdv   float64
	sumAdv   float64
	observed []int64

	symbolsTotal   *obs.Counter
	alertsTotal    *obs.Counter
	exposureMax    *obs.Gauge
	advantageMax   *obs.Gauge
	advantageMean  *obs.Gauge
	sharesObserved []*obs.Counter
}

// NewMeter builds a meter for a session over the given number of channels.
// reg and trace are optional; with a registry the meter registers its
// remicss_privacy_* series eagerly so they expose at zero before traffic,
// matching the rest of the obs layer. Panics on an invalid config, which is
// a programming error at session setup.
func NewMeter(cfg Config, channels int, reg *obs.Registry, trace *obs.Trace) *Meter {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &Meter{
		cfg:      cfg.withDefaults(),
		trace:    trace,
		observed: make([]int64, channels),
	}
	if reg != nil {
		m.symbolsTotal = reg.Counter("remicss_privacy_symbols_total")
		m.alertsTotal = reg.Counter("remicss_privacy_alerts_total")
		m.exposureMax = reg.Gauge("remicss_privacy_exposure_max_ppm")
		m.advantageMax = reg.Gauge("remicss_privacy_advantage_max_ppm")
		m.advantageMean = reg.Gauge("remicss_privacy_advantage_mean_ppm")
		m.sharesObserved = make([]*obs.Counter, channels)
		for i := range m.sharesObserved {
			m.sharesObserved[i] = reg.Counter("remicss_privacy_shares_observed_total",
				obs.Label{Key: "channel", Value: strconv.Itoa(i)})
		}
	}
	return m
}

// Config returns the meter's (defaulted) configuration.
func (m *Meter) Config() Config { return m.cfg }

// RecordSymbol scores one scheduled symbol from independent per-channel
// observation probabilities and folds it into the aggregates. at and seq
// locate the symbol in the trace when an alert fires.
func (m *Meter) RecordSymbol(at time.Duration, seq uint64, k int, probs []float64) Score {
	return m.recordPMF(at, seq, k, stats.Distribution(probs))
}

// RecordSymbolPMF scores one scheduled symbol from a precomputed
// observed-share-count pmf — the correlated-model feed, paired with
// core.CorrelatedObservedPMF.
func (m *Meter) RecordSymbolPMF(at time.Duration, seq uint64, k int, pmf []float64) Score {
	return m.recordPMF(at, seq, k, pmf)
}

func (m *Meter) recordPMF(at time.Duration, seq uint64, k int, pmf []float64) Score {
	sc := Score{
		Exposure:  exposureFromPMF(pmf, k),
		Advantage: AdvantageBoundPMF(pmf, k, m.cfg),
	}
	sc.Alert = m.cfg.Budget > 0 && sc.Advantage > m.cfg.Budget

	m.mu.Lock()
	m.symbols++
	m.sumAdv += sc.Advantage
	if sc.Exposure > m.maxExp {
		m.maxExp = sc.Exposure
	}
	if sc.Advantage > m.maxAdv {
		m.maxAdv = sc.Advantage
	}
	if sc.Alert {
		m.alerts++
	}
	symbols, sumAdv := m.symbols, m.sumAdv
	maxExp, maxAdv := m.maxExp, m.maxAdv
	m.mu.Unlock()

	if m.symbolsTotal != nil {
		m.symbolsTotal.Inc()
		m.exposureMax.Set(ppm(maxExp))
		m.advantageMax.Set(ppm(maxAdv))
		m.advantageMean.Set(ppm(sumAdv / float64(symbols)))
		if sc.Alert {
			m.alertsTotal.Inc()
		}
	}
	if sc.Alert && m.trace != nil {
		m.trace.Record(obs.EventPrivacyAlert, -1, at, seq, ppm(sc.Advantage))
	}
	return sc
}

// RecordObserved feeds the receiver/obs side: n shares on channel ch are
// known (or assumed) to have been exposed to the adversary — for example
// because the channel was marked compromised in a chaos scenario, or
// because an operator flagged a conduit. Out-of-range channels are ignored.
func (m *Meter) RecordObserved(ch, n int) {
	if ch < 0 || ch >= len(m.observed) || n <= 0 {
		return
	}
	m.mu.Lock()
	m.observed[ch] += int64(n)
	m.mu.Unlock()
	if m.sharesObserved != nil {
		m.sharesObserved[ch].Add(int64(n))
	}
}

// Snapshot returns the aggregate privacy verdict so far.
func (m *Meter) Snapshot() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Stats{
		Symbols:        m.symbols,
		Alerts:         m.alerts,
		MaxExposure:    m.maxExp,
		MaxAdvantage:   m.maxAdv,
		SharesObserved: append([]int64(nil), m.observed...),
	}
	if m.symbols > 0 {
		st.MeanAdvantage = m.sumAdv / float64(m.symbols)
	}
	return st
}

// exposureFromPMF sums the upper tail P(X >= k) of an observed-count pmf.
func exposureFromPMF(pmf []float64, k int) float64 {
	if k <= 0 {
		return 1
	}
	var sum float64
	for t := k; t < len(pmf); t++ {
		sum += pmf[t]
	}
	if sum > 1 {
		return 1
	}
	if sum < 0 {
		return 0
	}
	return sum
}

// ppm scales a probability to integer parts per million for gauge export.
func ppm(p float64) int64 {
	return int64(math.Round(p * 1e6))
}
