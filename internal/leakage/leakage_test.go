package leakage

import (
	"math"
	"testing"
	"time"

	"remicss/internal/core"
	"remicss/internal/obs"
	"remicss/internal/stats"
)

// With λ = 0 the bound must equal the paper's exposure z(k, M) bit-exactly:
// Shamir leaks nothing below threshold to an all-or-nothing adversary.
func TestZeroPartialBitsEqualsExposure(t *testing.T) {
	probsets := [][]float64{
		{0.1, 0.1, 0.1},
		{0.05, 0.2, 0.3, 0.15},
		{0.5, 0.5},
	}
	for _, probs := range probsets {
		for k := 1; k <= len(probs); k++ {
			want := stats.TailAtLeast(probs, k)
			got := AdvantageBound(probs, k, Config{})
			if got != want {
				t.Errorf("probs=%v k=%d: bound %v != exposure %v", probs, k, got, want)
			}
		}
	}
}

// The bound must be monotone in λ and clamp at 1.
func TestBoundMonotoneInPartialBits(t *testing.T) {
	probs := []float64{0.1, 0.1, 0.1}
	prev := -1.0
	for _, lambda := range []float64{0, 0.5, 1, 2, 4, 8, 16} {
		b := AdvantageBound(probs, 2, Config{PartialBits: lambda})
		if b < prev {
			t.Fatalf("λ=%v: bound %v below previous %v", lambda, b, prev)
		}
		if b > 1 {
			t.Fatalf("λ=%v: bound %v above 1", lambda, b)
		}
		prev = b
	}
	// At λ = F every unobserved share leaks a full share's worth: total
	// exposure.
	if b := AdvantageBound(probs, 2, Config{PartialBits: 8}); b != 1 {
		t.Fatalf("λ=F bound = %v, want 1", b)
	}
}

// Hand-computed bound: m = 3, k = 2, uniform z = 0.1, λ = 4, F = 8.
// t=2,3: tail = 0.028. t=1: P=3·0.1·0.81=0.243, deficit 4·2−8·1=0 → adv 1.
// t=0: P=0.729, deficit 4·3−8·2=−4 → adv 2^−4.
func TestBoundHandComputed(t *testing.T) {
	probs := []float64{0.1, 0.1, 0.1}
	want := 0.028 + 0.243*1 + 0.729*math.Exp2(-4)
	got := AdvantageBound(probs, 2, Config{PartialBits: 4})
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("bound = %v, want %v", got, want)
	}
}

// The correlated bound must dominate the independent bound whenever the
// symbol straddles a shared-risk group, and match it at zero correlation.
func TestCorrelatedBoundDominates(t *testing.T) {
	set := core.Set{
		{Risk: 0.1, Loss: 0.01, Delay: 30 * time.Millisecond, Rate: 1000},
		{Risk: 0.1, Loss: 0.01, Delay: 30 * time.Millisecond, Rate: 1000},
		{Risk: 0.1, Loss: 0.01, Delay: 30 * time.Millisecond, Rate: 1000},
	}
	cfg := Config{PartialBits: 2}
	ind := AdvantageBound(set.Risks(), 2, cfg)

	zero := core.Correlation{Groups: []core.RiskGroup{{Mask: 0b011}}}
	if got := CorrelatedAdvantageBound(set, zero, 2, 0b111, cfg); got != ind {
		t.Fatalf("zero-rho correlated bound %v != independent %v", got, ind)
	}

	corr := core.Correlation{Groups: []core.RiskGroup{{Mask: 0b011, RiskRho: 0.8}}}
	if got := CorrelatedAdvantageBound(set, corr, 2, 0b111, cfg); got <= ind {
		t.Fatalf("correlated bound %v not above independent %v", got, ind)
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		cfg Config
		ok  bool
	}{
		{Config{}, true},
		{Config{FieldBits: 8, PartialBits: 2, Budget: 0.1}, true},
		{Config{FieldBits: -1}, false},
		{Config{PartialBits: -1}, false},
		{Config{Budget: 1.5}, false},
		{Config{Budget: -0.1}, false},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if tc.ok && err != nil {
			t.Errorf("%+v: unexpected error %v", tc.cfg, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%+v: expected error", tc.cfg)
		}
	}
}

func TestMeterAggregatesAndAlerts(t *testing.T) {
	reg := obs.NewRegistry()
	trace := obs.NewTrace(64)
	m := NewMeter(Config{Budget: 0.05}, 3, reg, trace)

	// Low-exposure symbol: z(2, {0.1,0.1,0.1}) = 0.028 < budget.
	low := m.RecordSymbol(time.Second, 1, 2, []float64{0.1, 0.1, 0.1})
	if low.Alert {
		t.Fatalf("low symbol alerted: %+v", low)
	}
	// High-exposure symbol: z(1, {0.3}) = 0.3 > budget.
	high := m.RecordSymbol(2*time.Second, 2, 1, []float64{0.3})
	if !high.Alert {
		t.Fatalf("high symbol did not alert: %+v", high)
	}

	st := m.Snapshot()
	if st.Symbols != 2 || st.Alerts != 1 {
		t.Fatalf("snapshot %+v, want 2 symbols / 1 alert", st)
	}
	if math.Abs(st.MaxExposure-0.3) > 1e-12 || math.Abs(st.MaxAdvantage-0.3) > 1e-12 {
		t.Fatalf("snapshot maxima %+v, want 0.3", st)
	}
	if math.Abs(st.MeanAdvantage-(0.028+0.3)/2) > 1e-12 {
		t.Fatalf("mean advantage %v", st.MeanAdvantage)
	}

	m.RecordObserved(1, 3)
	m.RecordObserved(-1, 5) // ignored
	m.RecordObserved(9, 5)  // ignored
	if got := m.Snapshot().SharesObserved[1]; got != 3 {
		t.Fatalf("channel 1 observed = %d, want 3", got)
	}

	if trace.CountKind(obs.EventPrivacyAlert) != 1 {
		t.Fatalf("expected exactly one privacy-alert trace event")
	}
}

func TestMeterMetricsExposeAtZero(t *testing.T) {
	reg := obs.NewRegistry()
	NewMeter(Config{}, 2, reg, nil)
	for _, name := range []string{
		"remicss_privacy_symbols_total",
		"remicss_privacy_alerts_total",
		"remicss_privacy_exposure_max_ppm",
		"remicss_privacy_advantage_max_ppm",
		"remicss_privacy_advantage_mean_ppm",
	} {
		// Re-registering must return the existing series, proving it was
		// created eagerly at construction.
		switch name {
		case "remicss_privacy_symbols_total", "remicss_privacy_alerts_total":
			if reg.Counter(name).Value() != 0 {
				t.Errorf("%s not at zero", name)
			}
		default:
			if reg.Gauge(name).Value() != 0 {
				t.Errorf("%s not at zero", name)
			}
		}
	}
	if reg.Counter("remicss_privacy_shares_observed_total", obs.Label{Key: "channel", Value: "0"}).Value() != 0 {
		t.Errorf("per-channel observed counter missing")
	}
}

// A meter without registry or trace must still score and aggregate.
func TestMeterBare(t *testing.T) {
	m := NewMeter(Config{Budget: 0.01}, 2, nil, nil)
	sc := m.RecordSymbolPMF(0, 7, 1, []float64{0.5, 0.5})
	if !sc.Alert || math.Abs(sc.Exposure-0.5) > 1e-12 {
		t.Fatalf("bare meter score %+v", sc)
	}
	if st := m.Snapshot(); st.Alerts != 1 {
		t.Fatalf("bare meter snapshot %+v", st)
	}
}
